"""Tests for the figure builders and report rendering."""

import numpy as np
import pytest

from repro.analysis import figures, render_heatmap, render_series, summarize
from repro.analysis.sweeps import (
    HeatmapResult,
    SweepSeries,
    heatmap_1d,
    ladder_speedups_1d,
    ladder_speedups_2d,
)
from repro.core.config import FNO1DProblem, FNO2DProblem
from repro.core.stages import FusionStage


class TestLadderDrivers:
    def test_1d_returns_requested_stages(self):
        prob = FNO1DProblem.from_m_spatial(2**16, 64, 128, 64)
        speeds = ladder_speedups_1d(prob, FusionStage.ladder())
        assert set(speeds) == set(FusionStage.ladder())

    def test_best_is_max_of_ladder(self):
        prob = FNO1DProblem.from_m_spatial(2**16, 64, 128, 64)
        stages = (*FusionStage.ladder(), FusionStage.BEST)
        speeds = ladder_speedups_1d(prob, stages)
        best = max(speeds[s] for s in FusionStage.ladder())
        assert speeds[FusionStage.BEST] == pytest.approx(best, rel=1e-9)

    def test_2d_driver(self):
        prob = FNO2DProblem(batch=8, hidden=32, dim_x=256, dim_y=128,
                            modes_x=64, modes_y=64)
        speeds = ladder_speedups_2d(prob, [FusionStage.FFT_OPT])
        assert FusionStage.FFT_OPT in speeds


class TestFigureBuilders:
    def test_fig01c_structure(self):
        r = figures.fig01c()
        assert r.pytorch.launch_count == 5
        assert r.turbo.launch_count == 1
        assert r.speedup_percent > 0

    def test_fig05_contains_paper_rows(self):
        rows = {(r.n, r.keep): r for r in figures.fig05()}
        assert rows[(4, 1)].ops == 3
        assert rows[(4, 2)].ops == 6
        assert (128, 32) in rows and (256, 64) in rows

    def test_fig07_fig08_utilizations(self):
        f7 = figures.fig07()
        assert f7["forward_vkfft"] == pytest.approx(0.25)
        assert f7["forward_turbofno"] == 1.0
        assert f7["writeback_16pt_naive"] == pytest.approx(0.0625)
        f8 = figures.fig08()
        assert f8["epilogue_naive"] == pytest.approx(0.25)
        assert f8["epilogue_swizzled"] == 1.0

    @pytest.mark.parametrize("builder,n_stages", [
        (figures.fig10, 1), (figures.fig11, 2),
        (figures.fig12, 3), (figures.fig13, 4),
    ])
    def test_1d_panels_have_table2_stages(self, builder, n_stages):
        panels = builder()
        assert len(panels) == 4  # (a) K sweep + (b,c,d) BS sweeps
        for p in panels:
            assert len(p.series) == n_stages

    @pytest.mark.parametrize("builder", [figures.fig16, figures.fig18])
    def test_2d_panels(self, builder):
        panels = builder()
        assert len(panels) == 4
        assert all(len(p.x) > 2 for p in panels)

    def test_fig14_heatmap_panels(self):
        panels = figures.fig14()
        assert len(panels) == 4
        for hm in panels:
            assert hm.values.shape == (len(hm.rows), len(hm.cols))

    def test_fig19_heatmap_panels(self):
        panels = figures.fig19()
        assert len(panels) == 4

    def test_dense_flag_widens_grids(self):
        sparse = figures.fig10(dense=False)[0]
        dense = figures.fig10(dense=True)[0]
        assert len(dense.x) > len(sparse.x)


class TestRendering:
    def test_render_series(self):
        panels = figures.fig10()
        text = render_series(panels[0])
        assert "K" in text and "%" in text
        assert text.count("\n") >= len(panels[0].x)

    def test_render_heatmap(self):
        hm = heatmap_1d("t", 128, 64, [8, 40], [10, 14])
        text = render_heatmap(hm)
        assert "mean" in text and "negative cells" in text

    def test_summarize(self):
        panels = figures.fig10()
        stats = summarize(panels, FusionStage.FFT_OPT)
        assert set(stats) == {"mean", "max", "min", "negative_fraction"}
        assert stats["min"] <= stats["mean"] <= stats["max"]

    def test_sweep_series_helpers(self):
        s = SweepSeries("t", "x", [1, 2],
                        {FusionStage.FFT_OPT: [10.0, 20.0]})
        assert s.mean(FusionStage.FFT_OPT) == 15.0
        assert s.max(FusionStage.FFT_OPT) == 20.0
        assert s.stage(FusionStage.FFT_OPT) == [10.0, 20.0]

    def test_heatmap_helpers(self):
        hm = HeatmapResult("t", "r", "c", [1], [1, 2],
                           np.array([[5.0, -5.0]]))
        assert hm.mean == 0.0
        assert hm.negative_fraction() == 0.5
