"""Tests for the public spectral-convolution API (engine agreement)."""

import numpy as np
import pytest

from repro.core.spectral import ENGINES, spectral_conv_1d, spectral_conv_2d


class TestEngines1D:
    @pytest.fixture
    def case(self, rng):
        x = rng.standard_normal((3, 10, 64)) + 1j * rng.standard_normal((3, 10, 64))
        w = (rng.standard_normal((10, 8)) + 1j * rng.standard_normal((10, 8))) / 4
        return x, w

    def test_all_engines_agree(self, case):
        x, w = case
        outs = [spectral_conv_1d(x, w, 16, engine=e) for e in ENGINES]
        for o in outs[1:]:
            assert np.allclose(o, outs[0], atol=1e-9)

    def test_output_shape(self, case):
        x, w = case
        assert spectral_conv_1d(x, w, 16).shape == (3, 8, 64)

    def test_real_input_accepted(self, rng):
        x = rng.standard_normal((2, 4, 32))
        w = np.eye(4, dtype=complex)
        out = spectral_conv_1d(x, w, 8)
        ref = spectral_conv_1d(x + 0j, w, 8, engine="pytorch")
        assert np.allclose(out, ref, atol=1e-9)

    def test_unknown_engine(self, case):
        x, w = case
        with pytest.raises(ValueError):
            spectral_conv_1d(x, w, 16, engine="cudnn")

    def test_identity_weight_is_lowpass(self, rng):
        x = rng.standard_normal((1, 2, 64)) + 0j
        w = np.eye(2, dtype=complex)
        out = spectral_conv_1d(x, w, 64)  # keep everything
        assert np.allclose(out, x, atol=1e-9)


class TestEngines2D:
    @pytest.fixture
    def case(self, rng):
        x = rng.standard_normal((2, 6, 16, 32)) + 0j
        w = (rng.standard_normal((6, 5)) + 1j * rng.standard_normal((6, 5))) / 3
        return x, w

    def test_all_engines_agree(self, case):
        x, w = case
        outs = [spectral_conv_2d(x, w, 4, 8, engine=e) for e in ENGINES]
        for o in outs[1:]:
            assert np.allclose(o, outs[0], atol=1e-9)

    def test_output_shape(self, case):
        x, w = case
        assert spectral_conv_2d(x, w, 4, 8).shape == (2, 5, 16, 32)

    def test_unknown_engine(self, case):
        x, w = case
        with pytest.raises(ValueError):
            spectral_conv_2d(x, w, 4, 8, engine="")

    def test_full_modes_identity(self, rng):
        x = rng.standard_normal((1, 3, 16, 16)) + 0j
        w = np.eye(3, dtype=complex)
        out = spectral_conv_2d(x, w, 16, 16)
        assert np.allclose(out, x, atol=1e-9)
