"""Tests for the shared-memory bank-conflict model."""

import pytest

from repro.gpu.sharedmem import SharedMemoryBankModel, WarpAccess


@pytest.fixture
def model() -> SharedMemoryBankModel:
    return SharedMemoryBankModel()


class TestWarpAccess:
    def test_from_lists(self):
        acc = WarpAccess.from_lists([[0, 1], [2]])
        assert acc.word_addresses == ((0, 1), (2,))
        assert acc.num_words == 3

    def test_complex64_expands_to_word_pairs(self):
        acc = WarpAccess.complex64([[0], [5]])
        assert acc.word_addresses == ((0, 1), (10, 11))


class TestConflictCounting:
    def test_perfectly_coalesced(self, model):
        acc = WarpAccess.from_lists([[t] for t in range(32)])
        rep = model.analyze_instruction(acc)
        assert rep.actual_cycles == 1
        assert rep.ideal_cycles == 1
        assert rep.utilization == 1.0
        assert rep.distinct_banks == 32

    def test_same_bank_distinct_words_serialize(self, model):
        # 32 threads all hitting bank 0 at different words: 32 replays.
        acc = WarpAccess.from_lists([[32 * t] for t in range(32)])
        rep = model.analyze_instruction(acc)
        assert rep.actual_cycles == 32
        assert rep.ideal_cycles == 1
        assert rep.utilization == pytest.approx(1 / 32)

    def test_broadcast_is_free(self, model):
        # All threads read the same word: one cycle.
        acc = WarpAccess.from_lists([[7] for _ in range(32)])
        rep = model.analyze_instruction(acc)
        assert rep.actual_cycles == 1
        assert rep.utilization == 1.0

    def test_two_way_conflict(self, model):
        # Pairs of threads hit the same bank at different words.
        acc = WarpAccess.from_lists(
            [[t] for t in range(16)] + [[t + 32] for t in range(16)]
        )
        rep = model.analyze_instruction(acc)
        assert rep.actual_cycles == 2
        assert rep.ideal_cycles == 1
        assert rep.utilization == pytest.approx(0.5)

    def test_empty_access(self, model):
        rep = model.analyze_instruction(WarpAccess.from_lists([[]]))
        assert rep.actual_cycles == 0
        assert rep.utilization == 1.0

    def test_multi_instruction_accumulation(self, model):
        good = WarpAccess.from_lists([[t] for t in range(32)])
        bad = WarpAccess.from_lists([[32 * t] for t in range(32)])
        rep = model.analyze([good, bad])
        assert rep.ideal_cycles == 2
        assert rep.actual_cycles == 33
        assert rep.utilization == pytest.approx(2 / 33)

    def test_ideal_cycles_for_wide_access(self, model):
        # 64 distinct words cannot be served in fewer than 2 cycles.
        acc = WarpAccess.from_lists([[2 * t, 2 * t + 1] for t in range(32)])
        rep = model.analyze_instruction(acc)
        assert rep.ideal_cycles == 2
        assert rep.actual_cycles == 2  # consecutive words: conflict-free

    def test_bank_of_word(self, model):
        assert model.bank_of_word(0) == 0
        assert model.bank_of_word(31) == 31
        assert model.bank_of_word(32) == 0
        assert model.bank_of_word(33) == 1

    def test_invalid_model_params(self):
        with pytest.raises(ValueError):
            SharedMemoryBankModel(num_banks=0)
        with pytest.raises(ValueError):
            SharedMemoryBankModel(bank_bytes=-4)
