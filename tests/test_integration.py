"""Cross-package integration tests.

These exercise the full stack: PDE data generation -> FNO training through
the fused TurboFNO dataflow -> evaluation; and the execution model driven
by the same problem geometry the numerics ran.
"""

import numpy as np
import pytest

from repro.core.config import FNO1DProblem
from repro.core.pipeline_model import build_pipeline_1d
from repro.core.spectral import spectral_conv_1d
from repro.core.stages import FusionStage
from repro.nn import Adam, CosineLR, FNO1d, clip_grad_norm, train
from repro.nn.trainer import evaluate
from repro.pde import burgers_dataset


class TestFusedTrainingPath:
    """Training with per_mode=False runs the fused operator every step."""

    def test_shared_weight_fno_learns_burgers(self):
        u0, ut = burgers_dataset(40, n=32, t_final=0.3, nu=0.05, seed=1,
                                 n_steps=96)
        x = u0[:, None, :]
        y = ut[:, None, :]
        model = FNO1d(1, 1, width=12, modes=8, depth=2, proj_width=16,
                      per_mode=False, seed=2)
        opt = Adam(list(model.parameters()), lr=3e-3)
        hist = train(model, opt, x[:32], y[:32], epochs=12, batch_size=8)
        assert hist.final_train < 0.7 * hist.train_loss[0]
        test_err = evaluate(model, x[32:], y[32:])
        assert test_err < 1.0

    def test_scheduler_and_clipping_in_loop(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((16, 1, 16))
        y = 0.5 * x
        model = FNO1d(1, 1, width=6, modes=4, depth=1, proj_width=8)
        opt = Adam(list(model.parameters()), lr=1e-2)
        sched = CosineLR(opt, t_max=5)
        from repro.nn.losses import mse_loss

        losses = []
        for _ in range(5):
            opt.zero_grad()
            loss, grad = mse_loss(model(x), y)
            model.backward(grad)
            clip_grad_norm(list(model.parameters()), max_norm=1.0)
            opt.step()
            sched.step()
            losses.append(loss)
        assert losses[-1] < losses[0]
        assert opt.lr == pytest.approx(0.0, abs=1e-12)


class TestNumericsMeetModel:
    """The same layer geometry drives the numerics and the cost model."""

    @pytest.mark.parametrize("modes", [16, 32, 64])
    def test_problem_shapes_consistent(self, rng, modes):
        batch, hidden, dim_x = 4, 16, 64
        x = rng.standard_normal((batch, hidden, dim_x)) + 0j
        w = np.eye(hidden, dtype=complex)
        y = spectral_conv_1d(x, w, modes, engine="turbo")
        assert y.shape == (batch, hidden, dim_x)

        prob = FNO1DProblem(batch=batch, hidden=hidden, dim_x=dim_x,
                            modes=modes)
        pipe = build_pipeline_1d(prob, FusionStage.FUSED_ALL)
        c = pipe.counters()
        # The model's output write equals the tensor the numerics produced.
        assert c.global_bytes_written == pytest.approx(y.size * 8)

    def test_truncation_shrinks_both_sides_together(self, rng):
        """Fewer modes => numerics produce a smaller spectrum AND the model
        moves proportionally fewer intermediate bytes."""
        from repro.core.fused import fused_fft_gemm_1d

        batch, hidden, dim_x = 4, 16, 64
        x = rng.standard_normal((batch, hidden, dim_x)) + 0j
        w = np.eye(hidden, dtype=complex)

        sizes = {}
        writes = {}
        for modes in (16, 32):
            spec = fused_fft_gemm_1d(x, w, modes)
            sizes[modes] = spec.size
            prob = FNO1DProblem(batch=batch, hidden=hidden, dim_x=dim_x,
                                modes=modes)
            pipe = build_pipeline_1d(prob, FusionStage.FUSED_FFT_GEMM)
            writes[modes] = pipe.kernels[0].counters.global_bytes_written
        assert sizes[32] == 2 * sizes[16]
        assert writes[32] == pytest.approx(2 * writes[16])


class TestCalibration:
    def test_sensitivity_study_structure(self):
        from repro.analysis.calibration import CONCLUSIONS, sensitivity_study

        results = sensitivity_study()
        assert set(results) == {c.name for c in CONCLUSIONS}
        for points in results.values():
            assert len(points) >= 15  # every band point evaluated
            assert all(isinstance(ok, bool) for ok in points.values())

    def test_headline_conclusions_hold_at_default_point(self):
        from repro.analysis.calibration import CONCLUSIONS
        from repro.core.config import TurboFNOConfig
        from repro.gpu.device import A100_SPEC

        for c in CONCLUSIONS:
            assert c.check(A100_SPEC, TurboFNOConfig()), c.name
