"""Tests for the ``repro.api`` planning facade.

Covers the Problem protocol, plan-cache hit/miss behavior, registry
lookups, the Runner sweep drivers, byte-identical agreement with the
legacy ``build_pipeline_{1,2}d`` paths, and the once-only deprecation
shims at the package root.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass

import numpy as np
import pytest

import repro
from repro import api
from repro.core.config import FNO1DProblem, FNO2DProblem, TurboFNOConfig
from repro.core.pipeline_model import (
    best_stage_1d,
    best_stage_2d,
    build_pipeline_1d,
    build_pipeline_2d,
)
from repro.core.spectral import spectral_conv_1d, spectral_conv_2d
from repro.core.stages import FusionStage
from repro.gpu.device import A100_SPEC, H100_SPEC, DeviceSpec
from repro.gpu.timeline import Pipeline, speedup_percent

PROB_1D = FNO1DProblem.from_m_spatial(2**16, 64, 128, 64)
PROB_2D = FNO2DProblem(batch=8, hidden=32, dim_x=256, dim_y=128,
                       modes_x=64, modes_y=64)


class TestProblemProtocol:
    def test_fno_problems_implement_protocol(self):
        assert isinstance(PROB_1D, api.Problem)
        assert isinstance(PROB_2D, api.Problem)

    def test_arbitrary_object_does_not(self):
        assert not isinstance(object(), api.Problem)

    def test_geometry_properties(self):
        assert PROB_1D.ndim == 1
        assert PROB_1D.spatial_shape == (128,)
        assert PROB_1D.modes_shape == (64,)
        assert PROB_2D.ndim == 2
        assert PROB_2D.spatial_shape == (256, 128)
        assert PROB_2D.modes_shape == (64, 64)

    def test_describe_problem_is_json_ready(self):
        payload = api.describe_problem(PROB_2D)
        json.dumps(payload)
        assert payload["ndim"] == 2
        assert payload["spatial_shape"] == [256, 128]


class TestPlanCache:
    def test_hit_and_miss_accounting(self):
        api.clear_plan_cache()
        before = api.plan_cache_info()
        assert before.currsize == 0
        p1 = api.plan(PROB_1D, FusionStage.FFT_OPT)
        after_miss = api.plan_cache_info()
        assert after_miss.misses == before.misses + 1
        p2 = api.plan(PROB_1D, FusionStage.FFT_OPT)
        after_hit = api.plan_cache_info()
        assert after_hit.hits == after_miss.hits + 1
        assert p1 is p2  # cached plans are shared objects

    def test_distinct_keys_miss(self):
        api.clear_plan_cache()
        api.plan(PROB_1D, FusionStage.FFT_OPT)
        base = api.plan_cache_info().currsize
        # Different stage, config, device or geometry -> new entries.
        api.plan(PROB_1D, FusionStage.FUSED_ALL)
        api.plan(PROB_1D, FusionStage.FFT_OPT, TurboFNOConfig(fused_n_tb=128))
        api.plan(PROB_1D, FusionStage.FFT_OPT, device="h100")
        api.plan(FNO1DProblem.from_m_spatial(2**17, 64, 128, 64),
                 FusionStage.FFT_OPT)
        assert api.plan_cache_info().currsize == base + 4

    def test_equal_geometry_hits_across_instances(self):
        """Equal frozen dataclasses are one cache key, not two."""
        api.clear_plan_cache()
        api.plan(FNO1DProblem(batch=64, hidden=32, dim_x=128, modes=64),
                 FusionStage.FUSED_ALL)
        misses = api.plan_cache_info().misses
        api.plan(FNO1DProblem(batch=64, hidden=32, dim_x=128, modes=64),
                 FusionStage.FUSED_ALL)
        info = api.plan_cache_info()
        assert info.misses == misses
        assert info.hits >= 1

    def test_best_resolution_reuses_ladder_plans(self):
        api.clear_plan_cache()
        runner = api.Runner()
        for stage in FusionStage.ladder():
            runner.plan(PROB_1D, stage)
        misses = api.plan_cache_info().misses
        best = runner.best(PROB_1D)
        # Resolving BEST after the ladder adds exactly one entry (the BEST
        # key itself); every rung evaluation is a cache hit.
        assert api.plan_cache_info().misses == misses + 1
        assert best.stage in FusionStage.ladder()


class TestPlan:
    def test_best_matches_legacy_best_stage(self):
        p = api.plan(PROB_1D)  # stage defaults to BEST
        assert (p.stage, p.total_time) == best_stage_1d(PROB_1D)
        p2 = api.plan(PROB_2D)
        assert (p2.stage, p2.total_time) == best_stage_2d(PROB_2D)

    def test_stage_spellings(self):
        by_enum = api.plan(PROB_1D, FusionStage.FUSED_ALL)
        assert api.plan(PROB_1D, "D") is by_enum
        assert api.plan(PROB_1D, "fused_all") is by_enum
        assert api.plan(PROB_1D, "d") is by_enum

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="unknown fusion stage"):
            api.plan(PROB_1D, "Z")

    def test_report_and_to_dict(self):
        p = api.plan(PROB_1D, "D")
        rep = p.report()
        assert rep is p.report()  # memoised
        d = p.to_dict()
        json.dumps(d)
        assert d["stage"] == "D"
        assert d["device"] == A100_SPEC.name
        assert d["total_time_ms"] == pytest.approx(rep.total_time * 1e3)
        assert len(d["kernels"]) == rep.launch_count

    def test_speedup_vs_baseline(self):
        base = api.plan(PROB_1D, FusionStage.PYTORCH)
        fused = api.plan(PROB_1D, FusionStage.FUSED_ALL)
        assert base.speedup_vs_baseline() == 0.0
        expected = speedup_percent(base.total_time, fused.total_time)
        assert fused.speedup_vs_baseline() == expected

    def test_unsupported_ndim_rejected(self):
        @dataclass(frozen=True)
        class Fake3D:
            batch: int = 1
            hidden: int = 8
            ndim: int = 99

        with pytest.raises(ValueError, match="no pipeline builder"):
            api.plan(Fake3D(), FusionStage.FFT_OPT)


class TestRegistries:
    def test_device_lookup(self):
        assert api.get_device("a100") is A100_SPEC
        assert api.get_device("H100") is H100_SPEC  # case-insensitive
        assert api.get_device(None) is api.DEFAULT_DEVICE
        spec = DeviceSpec(name="toy", num_sms=4)
        assert api.get_device(spec) is spec  # specs pass through

    def test_unknown_device_rejected(self):
        with pytest.raises(ValueError, match="unknown device"):
            api.get_device("tpu-v5")

    def test_register_device_and_collision(self):
        name = "test-toy-device"
        spec = DeviceSpec(name="toy", num_sms=4)
        try:
            api.register_device(name, spec)
            assert api.get_device(name) is spec
            assert name in api.list_devices()
            with pytest.raises(ValueError, match="already registered"):
                api.register_device(name, spec)
            api.register_device(name, A100_SPEC, overwrite=True)
            assert api.get_device(name) is A100_SPEC
        finally:
            from repro.api import registry
            registry._DEVICES.pop(name, None)

    def test_stage_resolution(self):
        assert api.resolve_stage("A") is FusionStage.FFT_OPT
        assert api.resolve_stage("pytorch") is FusionStage.PYTORCH
        assert api.resolve_stage("BEST") is FusionStage.BEST
        assert api.resolve_stage(FusionStage.FUSED_ALL) is FusionStage.FUSED_ALL
        assert api.list_stages()[0] is FusionStage.PYTORCH
        assert api.list_stages()[-1] is FusionStage.BEST

    def test_pipeline_builder_registry_opens_new_ndim(self):
        @dataclass(frozen=True)
        class Toy3DProblem:
            batch: int = 2
            hidden: int = 8
            ndim: int = 3

        def toy_builder(problem, stage, cfg):
            pipe = Pipeline("toy-3d")
            pipe.add(build_pipeline_1d(PROB_1D, FusionStage.FUSED_ALL,
                                       cfg).kernels[0])
            return pipe

        from repro.api import registry
        assert 3 not in api.supported_ndims()
        try:
            api.register_pipeline_builder(3, toy_builder)
            assert 3 in api.supported_ndims()
            with pytest.raises(ValueError, match="already registered"):
                api.register_pipeline_builder(3, toy_builder)
            p = api.plan(Toy3DProblem(), FusionStage.FUSED_ALL)
            assert p.pipeline.name == "toy-3d"

            def other_builder(problem, stage, cfg):
                pipe = toy_builder(problem, stage, cfg)
                pipe.name = "toy-3d-v2"
                return pipe

            # Overwriting a builder drops the plan cache: the same
            # geometry must re-compile through the new builder.
            api.register_pipeline_builder(3, other_builder, overwrite=True)
            p2 = api.plan(Toy3DProblem(), FusionStage.FUSED_ALL)
            assert p2.pipeline.name == "toy-3d-v2"
        finally:
            registry._BUILDERS.pop(3, None)
            api.clear_plan_cache()

    def test_default_builders_cover_1d_and_2d(self):
        assert set(api.supported_ndims()) >= {1, 2}


class TestRunner:
    def test_ladder_matches_inlined_legacy_computation(self):
        """Runner.ladder (and the analysis wrapper over it) reproduces the
        pre-facade driver computation exactly."""
        from repro.analysis.sweeps import ladder_speedups_1d

        cfg = TurboFNOConfig()
        stages = (*FusionStage.ladder(), FusionStage.BEST)
        base = build_pipeline_1d(PROB_1D, FusionStage.PYTORCH,
                                 cfg).total_time(A100_SPEC)
        expected = {}
        for s in stages:
            if s is FusionStage.BEST:
                _, t = best_stage_1d(PROB_1D, cfg, A100_SPEC)
            else:
                t = build_pipeline_1d(PROB_1D, s, cfg).total_time(A100_SPEC)
            expected[s] = speedup_percent(base, t)
        assert api.Runner().ladder(PROB_1D, stages) == expected
        assert ladder_speedups_1d(PROB_1D, stages) == expected

    def test_map_returns_one_plan_per_problem(self):
        probs = [FNO1DProblem(batch=b, hidden=32, dim_x=128, modes=64)
                 for b in (16, 64, 256)]
        plans = api.Runner().map(probs, "D")
        assert [p.problem for p in plans] == probs
        assert all(p.stage is FusionStage.FUSED_ALL for p in plans)

    def test_sweep_series_shape(self):
        probs = [FNO1DProblem(batch=b, hidden=32, dim_x=128, modes=64)
                 for b in (16, 64)]
        series = api.Runner().sweep(probs, ("A", "D"))
        assert set(series) == {FusionStage.FFT_OPT, FusionStage.FUSED_ALL}
        assert all(len(v) == len(probs) for v in series.values())

    def test_sweep_dedups_stage_spellings(self):
        """Two spellings of one stage must not double-append its series."""
        probs = [FNO1DProblem(batch=16, hidden=32, dim_x=128, modes=64)]
        series = api.Runner().sweep(probs, ("A", "fft_opt", FusionStage.FFT_OPT))
        assert list(series) == [FusionStage.FFT_OPT]
        assert len(series[FusionStage.FFT_OPT]) == len(probs)

    def test_device_context(self):
        a100 = api.Runner()
        h100 = api.Runner(device="h100")
        assert a100.device is A100_SPEC and h100.device is H100_SPEC
        t_a = a100.plan(PROB_1D, "D").total_time
        t_h = h100.plan(PROB_1D, "D").total_time
        assert t_h < t_a  # H100 has more of everything

    def test_mixed_dimensionality_sweep(self):
        series = api.Runner().sweep([PROB_1D, PROB_2D], ("D",))
        assert len(series[FusionStage.FUSED_ALL]) == 2


class TestLegacyEquivalence:
    """repro.api reproduces the old paths bit-for-bit (acceptance gate)."""

    CFG = TurboFNOConfig()

    def _legacy_series_1d(self, problems, stages):
        out = {s: [] for s in stages}
        for prob in problems:
            base = build_pipeline_1d(prob, FusionStage.PYTORCH,
                                     self.CFG).total_time(A100_SPEC)
            for s in stages:
                if s is FusionStage.BEST:
                    _, t = best_stage_1d(prob, self.CFG, A100_SPEC)
                else:
                    t = build_pipeline_1d(prob, s, self.CFG).total_time(A100_SPEC)
                out[s].append(speedup_percent(base, t))
        return out

    def _legacy_series_2d(self, problems, stages):
        out = {s: [] for s in stages}
        for prob in problems:
            base = build_pipeline_2d(prob, FusionStage.PYTORCH,
                                     self.CFG).total_time(A100_SPEC)
            for s in stages:
                if s is FusionStage.BEST:
                    _, t = best_stage_2d(prob, self.CFG, A100_SPEC)
                else:
                    t = build_pipeline_2d(prob, s, self.CFG).total_time(A100_SPEC)
                out[s].append(speedup_percent(base, t))
        return out

    def test_1d_series_byte_identical(self):
        problems = [FNO1DProblem.from_m_spatial(2**16, k, 128, 64)
                    for k in (16, 64, 136)]
        stages = (*FusionStage.ladder(), FusionStage.BEST)
        legacy = self._legacy_series_1d(problems, stages)
        new = api.Runner(config=self.CFG).sweep(problems, stages)
        assert new == legacy  # exact float equality, not approx

    def test_2d_series_byte_identical(self):
        problems = [FNO2DProblem(batch=bs, hidden=64, dim_x=256, dim_y=128,
                                 modes_x=64, modes_y=64)
                    for bs in (4, 48, 96)]
        stages = (*FusionStage.ladder(), FusionStage.BEST)
        legacy = self._legacy_series_2d(problems, stages)
        new = api.Runner(config=self.CFG).sweep(problems, stages)
        assert new == legacy

    def test_figure_builder_series_unchanged(self):
        """fig10's api-routed panels equal a hand-rolled legacy sweep."""
        from repro.analysis import figures

        panel = figures.fig10()[0]  # K sweep at M=2^20
        problems = [FNO1DProblem.from_m_spatial(2**20, int(k), 128, 64)
                    for k in panel.x]
        legacy = self._legacy_series_1d(problems, (FusionStage.FFT_OPT,))
        assert panel.series[FusionStage.FFT_OPT] == legacy[FusionStage.FFT_OPT]


class TestSpectralConvFacade:
    def test_1d_dispatch(self, rng):
        x = (rng.standard_normal((2, 8, 32)) + 0j).astype(np.complex64)
        w = (np.eye(8) + 0j).astype(np.complex64)
        assert np.array_equal(api.spectral_conv(x, w, 8),
                              spectral_conv_1d(x, w, 8))

    def test_2d_dispatch_int_and_tuple_modes(self, rng):
        x = (rng.standard_normal((2, 4, 16, 16)) + 0j).astype(np.complex64)
        w = (np.eye(4) + 0j).astype(np.complex64)
        expected = spectral_conv_2d(x, w, 8, 4)
        assert np.array_equal(api.spectral_conv(x, w, (8, 4)), expected)
        assert np.array_equal(api.spectral_conv(x, w, 8),
                              spectral_conv_2d(x, w, 8, 8))

    def test_numpy_integer_modes(self, rng):
        """modes from numpy arithmetic (sweep arrays) must dispatch as
        scalars, not crash in tuple()."""
        x = (rng.standard_normal((2, 8, 32)) + 0j).astype(np.complex64)
        w = (np.eye(8) + 0j).astype(np.complex64)
        assert np.array_equal(api.spectral_conv(x, w, np.int64(8)),
                              spectral_conv_1d(x, w, 8))
        x2 = (rng.standard_normal((2, 4, 16, 16)) + 0j).astype(np.complex64)
        w2 = (np.eye(4) + 0j).astype(np.complex64)
        assert np.array_equal(api.spectral_conv(x2, w2, np.int64(8)),
                              spectral_conv_2d(x2, w2, 8, 8))

    def test_non_integral_modes_rejected(self, rng):
        x = (rng.standard_normal((2, 8, 32)) + 0j).astype(np.complex64)
        with pytest.raises(ValueError, match="integer"):
            api.spectral_conv(x, np.eye(8), 8.0)

    def test_bad_rank_rejected(self, rng):
        with pytest.raises(ValueError, match="ndim=2"):
            api.spectral_conv(np.zeros((4, 4)), np.eye(4), 2)


class TestDeprecationShims:
    @pytest.mark.parametrize("name,home,attr", [
        ("build_pipeline_1d", "repro.core.pipeline_model", "build_pipeline_1d"),
        ("build_pipeline_2d", "repro.core.pipeline_model", "build_pipeline_2d"),
        ("best_stage_1d", "repro.core.pipeline_model", "best_stage_1d"),
        ("best_stage_2d", "repro.core.pipeline_model", "best_stage_2d"),
        ("spectral_conv_1d", "repro.core.spectral", "spectral_conv_1d"),
        ("spectral_conv_2d", "repro.core.spectral", "spectral_conv_2d"),
    ])
    def test_shim_warns_exactly_once_and_forwards(self, name, home, attr):
        import importlib

        repro._warned.discard(name)  # reset: other tests may have fired it
        with pytest.warns(DeprecationWarning, match=f"repro.{name} is deprecated"):
            obj = getattr(repro, name)
        assert obj is getattr(importlib.import_module(home), attr)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second access must be silent
            assert getattr(repro, name) is obj

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError, match="frobnicate"):
            repro.frobnicate

    def test_core_imports_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            from repro.core.pipeline_model import build_pipeline_1d  # noqa: F401
            from repro.core.spectral import spectral_conv_1d  # noqa: F401

    def test_star_import_does_not_warn(self):
        """Shims are excluded from __all__, so `from repro import *` stays
        silent under -W error."""
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            exec("from repro import *", {})
