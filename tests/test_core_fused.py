"""Tests for the fused operators: single-kernel dataflow == staged oracle."""

import numpy as np
import pytest

from repro.baselines.pytorch_fno import (
    pytorch_like_spectral_conv_1d,
    pytorch_like_spectral_conv_2d,
)
from repro.core.fft_variant import assemble_a_tile, kloop_fft_schedule
from repro.core.fused import (
    fused_fft_gemm_1d,
    fused_fft_gemm_ifft_1d,
    fused_fft_gemm_ifft_2d,
    fused_gemm_ifft_1d,
)
from repro.fft.pruned import truncated_fft


def _weights(rng, c_in, c_out, scale=0.3):
    w = rng.standard_normal((c_in, c_out)) + 1j * rng.standard_normal((c_in, c_out))
    return w * scale


class TestFused1D:
    @pytest.mark.parametrize("batch,c_in,c_out,dim_x,modes", [
        (2, 8, 8, 64, 16),
        (5, 24, 16, 128, 64),   # paper-like shape
        (1, 3, 7, 32, 32),      # no truncation
        (3, 8, 8, 128, 1),      # extreme truncation
    ])
    def test_matches_pytorch_oracle(self, rng, batch, c_in, c_out, dim_x, modes):
        x = rng.standard_normal((batch, c_in, dim_x)) + 1j * rng.standard_normal(
            (batch, c_in, dim_x)
        )
        w = _weights(rng, c_in, c_out)
        fused = fused_fft_gemm_ifft_1d(x, w, modes)
        oracle = pytorch_like_spectral_conv_1d(x, w, modes)
        assert np.allclose(fused, oracle, atol=1e-9)

    @pytest.mark.parametrize("k_tb", [1, 3, 8, 64])
    def test_k_tile_size_irrelevant_to_result(self, rng, k_tb):
        x = rng.standard_normal((2, 12, 64)) + 0j
        w = _weights(rng, 12, 10)
        ref = fused_fft_gemm_ifft_1d(x, w, 16, k_tb=8)
        out = fused_fft_gemm_ifft_1d(x, w, 16, k_tb=k_tb)
        assert np.allclose(out, ref, atol=1e-10)

    @pytest.mark.parametrize("signal_tile", [1, 2, 7, 100])
    def test_signal_tiling_irrelevant_to_result(self, rng, signal_tile):
        x = rng.standard_normal((5, 6, 32)) + 0j
        w = _weights(rng, 6, 6)
        ref = pytorch_like_spectral_conv_1d(x, w, 8)
        out = fused_fft_gemm_ifft_1d(x, w, 8, signal_tile=signal_tile)
        assert np.allclose(out, ref, atol=1e-10)

    def test_complex64_pipeline(self, rng):
        x = (rng.standard_normal((2, 8, 64)) + 0j).astype(np.complex64)
        w = _weights(rng, 8, 8).astype(np.complex64)
        out = fused_fft_gemm_ifft_1d(x, w, 16)
        assert out.dtype == np.complex64
        oracle = pytorch_like_spectral_conv_1d(x, w, 16)
        assert np.allclose(out, oracle, atol=1e-4)

    def test_stage_b_returns_truncated_product(self, rng):
        x = rng.standard_normal((2, 8, 64)) + 0j
        w = _weights(rng, 8, 6)
        out = fused_fft_gemm_1d(x, w, 16)
        xk = np.fft.fft(x, axis=-1)[:, :, :16]
        expected = np.einsum("bim,io->bom", xk, w)
        assert out.shape == (2, 6, 16)
        assert np.allclose(out, expected, atol=1e-9)

    def test_stage_c_composes_with_stage_b_to_stage_d(self, rng):
        x = rng.standard_normal((2, 8, 64)) + 0j
        w = _weights(rng, 8, 6)
        # B then a pruned iFFT on the spectrum equals the fully fused D.
        spectrum = truncated_fft(x, 16, axis=-1)
        via_c = fused_gemm_ifft_1d(spectrum, w, 64)
        via_d = fused_fft_gemm_ifft_1d(x, w, 16)
        assert np.allclose(via_c, via_d, atol=1e-9)

    @pytest.mark.parametrize("modes", [0, 65])
    def test_modes_validation(self, rng, modes):
        x = rng.standard_normal((1, 4, 64)) + 0j
        with pytest.raises(ValueError):
            fused_fft_gemm_ifft_1d(x, _weights(rng, 4, 4), modes)

    def test_weight_mismatch_rejected(self, rng):
        x = rng.standard_normal((1, 4, 64)) + 0j
        with pytest.raises(ValueError):
            fused_fft_gemm_ifft_1d(x, _weights(rng, 5, 4), 16)


class TestFused2D:
    @pytest.mark.parametrize("shape,modes", [
        ((2, 6, 32, 64), (8, 16)),
        ((1, 12, 64, 32), (16, 8)),
        ((3, 4, 16, 16), (16, 16)),  # no truncation
    ])
    def test_matches_pytorch_oracle(self, rng, shape, modes):
        x = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        w = _weights(rng, shape[1], shape[1] - 1)
        fused = fused_fft_gemm_ifft_2d(x, w, *modes)
        oracle = pytorch_like_spectral_conv_2d(x, w, *modes)
        assert np.allclose(fused, oracle, atol=1e-9)

    def test_tiling_invariance(self, rng):
        x = rng.standard_normal((2, 6, 16, 32)) + 0j
        w = _weights(rng, 6, 6)
        ref = fused_fft_gemm_ifft_2d(x, w, 4, 8)
        for k_tb, tile in [(2, 3), (6, 1), (8, 100)]:
            out = fused_fft_gemm_ifft_2d(x, w, 4, 8, k_tb=k_tb, signal_tile=tile)
            assert np.allclose(out, ref, atol=1e-10)

    def test_modes_validation(self, rng):
        x = rng.standard_normal((1, 4, 16, 16)) + 0j
        with pytest.raises(ValueError):
            fused_fft_gemm_ifft_2d(x, _weights(rng, 4, 4), 32, 8)


class TestKLoopVariant:
    def test_schedule_visits_every_channel_once_in_order(self, rng):
        signals = rng.standard_normal((20, 32)) + 0j
        steps = list(kloop_fft_schedule(signals, modes=8, k_tb=8))
        ranges = [s.k_range for s in steps]
        assert ranges == [(0, 8), (8, 16), (16, 20)]
        assert [s.k_index for s in steps] == [0, 1, 2]

    def test_a_tiles_are_truncated_spectra_column_major(self, rng):
        signals = rng.standard_normal((8, 64)) + 0j
        tile = assemble_a_tile(signals, modes=16)
        assert tile.shape == (16, 8)
        assert tile.flags["C_CONTIGUOUS"]
        expected = np.fft.fft(signals, axis=-1)[:, :16].T
        assert np.allclose(tile, expected, atol=1e-9)

    def test_schedule_tiles_concatenate_to_full_spectrum(self, rng):
        signals = rng.standard_normal((24, 32)) + 0j
        steps = list(kloop_fft_schedule(signals, modes=8, k_tb=8))
        full = np.concatenate([s.a_tile for s in steps], axis=1)
        assert np.allclose(full, np.fft.fft(signals, axis=-1)[:, :8].T, atol=1e-9)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            list(kloop_fft_schedule(np.zeros((2, 2, 2)), 2))
        with pytest.raises(ValueError):
            list(kloop_fft_schedule(np.zeros((4, 8)) + 0j, 2, k_tb=0))
        with pytest.raises(ValueError):
            assemble_a_tile(np.zeros((2, 2, 2)), 2)
