"""Tests for the FNO models: shapes, end-to-end gradients, learning."""

import numpy as np
import pytest

from repro.nn import Adam, FNO1d, FNO2d, relative_l2_loss, train
from repro.nn.trainer import evaluate


class TestFNO1d:
    def test_forward_shape(self, rng):
        model = FNO1d(2, 3, width=8, modes=4, depth=2, proj_width=8)
        y = model(rng.standard_normal((5, 2, 32)))
        assert y.shape == (5, 3, 32)

    def test_backward_shape(self, rng):
        model = FNO1d(2, 1, width=8, modes=4, depth=2, proj_width=8)
        x = rng.standard_normal((3, 2, 32))
        y = model(x)
        gx = model.backward(np.ones_like(y))
        assert gx.shape == x.shape

    def test_end_to_end_gradient(self, rng):
        model = FNO1d(1, 1, width=6, modes=4, depth=1, proj_width=6, seed=3)
        x = rng.standard_normal((2, 1, 16))
        y = model(x)
        g = rng.standard_normal(y.shape)
        gx = model.backward(g.copy())
        eps = 1e-6
        for _ in range(4):
            idx = tuple(int(rng.integers(0, s)) for s in x.shape)
            xp = x.copy(); xp[idx] += eps
            xm = x.copy(); xm[idx] -= eps
            fd = (np.sum(model(xp) * g) - np.sum(model(xm) * g)) / (2 * eps)
            assert abs(fd - gx[idx]) / max(abs(fd), 1.0) < 1e-4

    def test_num_parameters_counts_complex_twice(self):
        shallow = FNO1d(1, 1, width=4, modes=2, depth=1, proj_width=4)
        deep = FNO1d(1, 1, width=4, modes=2, depth=3, proj_width=4)
        assert deep.num_parameters() > shallow.num_parameters()

    def test_per_mode_flag_changes_weight_shape(self):
        shared = FNO1d(1, 1, width=4, modes=4, depth=1, per_mode=False)
        per = FNO1d(1, 1, width=4, modes=4, depth=1, per_mode=True)
        assert per.num_parameters() > shared.num_parameters()

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            FNO1d(1, 1, depth=0)

    def test_deterministic_given_seed(self, rng):
        x = rng.standard_normal((2, 1, 16))
        a = FNO1d(1, 1, width=4, modes=2, depth=1, seed=7)(x)
        b = FNO1d(1, 1, width=4, modes=2, depth=1, seed=7)(x)
        assert np.allclose(a, b)


class TestFNO2d:
    def test_forward_shape(self, rng):
        model = FNO2d(3, 2, width=6, modes_x=2, modes_y=4, depth=2, proj_width=8)
        y = model(rng.standard_normal((2, 3, 8, 16)))
        assert y.shape == (2, 2, 8, 16)

    def test_backward_shape(self, rng):
        model = FNO2d(1, 1, width=4, modes_x=2, modes_y=2, depth=1, proj_width=4)
        x = rng.standard_normal((2, 1, 8, 8))
        y = model(x)
        assert model.backward(np.ones_like(y)).shape == x.shape


class TestLearning:
    def test_training_reduces_loss_1d(self, rng):
        x = rng.standard_normal((24, 1, 32))
        y = 0.5 * np.roll(x, 2, axis=-1)
        model = FNO1d(1, 1, width=10, modes=8, depth=2, proj_width=12, seed=1)
        opt = Adam(list(model.parameters()), lr=3e-3)
        hist = train(model, opt, x, y, epochs=10, batch_size=8)
        assert hist.final_train < 0.8 * hist.train_loss[0]

    def test_test_set_evaluated(self, rng):
        x = rng.standard_normal((8, 1, 16))
        y = x.copy()
        model = FNO1d(1, 1, width=4, modes=4, depth=1, proj_width=4)
        opt = Adam(list(model.parameters()), lr=1e-3)
        hist = train(model, opt, x, y, epochs=2, batch_size=4,
                     x_test=x, y_test=y)
        assert len(hist.test_loss) == 2
        assert hist.final_test == pytest.approx(
            evaluate(model, x, y), rel=1e-6
        )

    def test_trainer_validation(self, rng):
        x = rng.standard_normal((4, 1, 16))
        model = FNO1d(1, 1, width=4, modes=4, depth=1)
        opt = Adam(list(model.parameters()))
        with pytest.raises(ValueError):
            train(model, opt, x, x[:2], epochs=1)
        with pytest.raises(ValueError):
            train(model, opt, x, x, epochs=0)

    def test_history_accessors(self):
        from repro.nn.trainer import TrainingHistory

        h = TrainingHistory()
        with pytest.raises(ValueError):
            _ = h.final_train
        with pytest.raises(ValueError):
            _ = h.final_test
