"""Compiled spectral-conv executors: byte identity with the legacy fused
loops, executor reuse, plan attachment, and the parallel sweep runner."""

import numpy as np
import pytest

from repro.api import Runner, clear_plan_cache, plan
from repro.core import compiled as core_compiled
from repro.core import fused, legacy
from repro.core.compiled import (
    CompiledSpectralConv1D,
    CompiledSpectralConv2D,
    compile_spectral_conv,
)
from repro.core.config import FNO1DProblem, FNO2DProblem
from repro.fft._ckernels import kernels_available

BACKENDS = ["ckernels", "numpy"] if kernels_available() else ["numpy"]


@pytest.fixture(params=BACKENDS)
def backend(request, monkeypatch):
    if request.param == "numpy":
        from repro.fft import _ckernels, compiled

        monkeypatch.setitem(_ckernels._state, "kernels", None)
        monkeypatch.setitem(_ckernels._state, "tried", True)
        compiled.clear_fft_plan_cache()
    return request.param


def _weight(c_in, c_out, dtype, rng):
    return (
        rng.standard_normal((c_in, c_out))
        + 1j * rng.standard_normal((c_in, c_out))
    ).astype(dtype)


def _x(shape, dtype, rng):
    x = rng.standard_normal(shape)
    if np.dtype(dtype).kind == "c":
        x = x + 1j * rng.standard_normal(shape)
    return x.astype(dtype)


def _bit_equal(a, b):
    return a.dtype == b.dtype and np.array_equal(
        np.ascontiguousarray(a).view(a.real.dtype),
        np.ascontiguousarray(b).view(b.real.dtype),
    )


# ---------------------------------------------------------------------------
# byte identity with the legacy loops
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("dtype", (np.float32, np.float64, np.complex64))
@pytest.mark.parametrize(
    "batch,c_in,c_out,dim_x,modes",
    [(7, 5, 6, 128, 64), (16, 8, 8, 64, 64), (33, 9, 3, 32, 8),
     (1, 1, 1, 2, 1), (20, 16, 4, 16, 16), (5, 3, 2, 8, 2)],
)
def test_executor_1d_bit_identical(backend, dtype, batch, c_in, c_out,
                                   dim_x, modes):
    rng = np.random.default_rng(0)
    wdtype = np.complex128 if dtype == np.float64 else np.complex64
    x = _x((batch, c_in, dim_x), dtype, rng)
    w = _weight(c_in, c_out, wdtype, rng)
    conv = CompiledSpectralConv1D(w, modes)
    ref = legacy.fused_fft_gemm_ifft_1d(x, w, modes)
    assert _bit_equal(conv(x), ref)
    # the functional wrapper takes the same compiled path
    assert _bit_equal(fused.fused_fft_gemm_ifft_1d(x, w, modes), ref)


@pytest.mark.parametrize("dtype", (np.float32, np.complex64))
@pytest.mark.parametrize(
    "batch,c_in,c_out,dim_x,dim_y,mx,my",
    [(3, 5, 4, 32, 16, 8, 8), (2, 8, 8, 16, 16, 16, 4),
     (1, 2, 3, 8, 8, 8, 8), (4, 3, 2, 4, 8, 2, 2)],
)
def test_executor_2d_bit_identical(backend, dtype, batch, c_in, c_out,
                                   dim_x, dim_y, mx, my):
    rng = np.random.default_rng(1)
    x = _x((batch, c_in, dim_x, dim_y), dtype, rng)
    w = _weight(c_in, c_out, np.complex64, rng)
    conv = CompiledSpectralConv2D(w, mx, my)
    ref = legacy.fused_fft_gemm_ifft_2d(x, w, mx, my)
    assert _bit_equal(conv(x), ref)
    assert _bit_equal(fused.fused_fft_gemm_ifft_2d(x, w, mx, my), ref)


@pytest.mark.parametrize("dtype", (np.float32, np.complex64))
def test_stage_b_and_c_wrappers_bit_identical(backend, dtype):
    rng = np.random.default_rng(2)
    x = _x((9, 11, 64), dtype, rng)
    w = _weight(11, 5, np.complex64, rng)
    assert _bit_equal(
        fused.fused_fft_gemm_1d(x, w, 16), legacy.fused_fft_gemm_1d(x, w, 16)
    )
    xk = _x((9, 11, 16), np.complex64, rng)
    assert _bit_equal(
        fused.fused_gemm_ifft_1d(xk, w, 64),
        legacy.fused_gemm_ifft_1d(xk, w, 64),
    )


def test_executor_reuse_across_calls_and_shapes(backend):
    """One executor, many inputs: staging reuse must not leak state."""
    rng = np.random.default_rng(3)
    w = _weight(6, 6, np.complex64, rng)
    conv = CompiledSpectralConv1D(w, 8)
    inputs = [
        _x((b, 6, dim_x), np.float32, rng)
        for b, dim_x in ((4, 32), (19, 32), (2, 16), (4, 32))
    ]
    for x in inputs:
        assert _bit_equal(conv(x), legacy.fused_fft_gemm_ifft_1d(x, w, 8))
    # float64 input through the same executor: separate complex128 staging
    x64 = _x((3, 6, 32), np.float64, rng)
    assert _bit_equal(conv(x64), legacy.fused_fft_gemm_ifft_1d(x64, w, 8))


def test_executor_rejects_bad_inputs():
    w = np.ones((4, 4), np.complex64)
    conv = CompiledSpectralConv1D(w, 8)
    with pytest.raises(ValueError, match="expected 3-D input"):
        conv(np.ones((4, 4), np.float32))
    with pytest.raises(ValueError, match="C_in"):
        conv(np.ones((2, 5, 16), np.float32))
    with pytest.raises(ValueError, match="modes must be in"):
        CompiledSpectralConv1D(w, 64)(np.ones((2, 4, 16), np.float32))
    with pytest.raises(ValueError, match="power of two"):
        CompiledSpectralConv1D(w, 3)(np.ones((2, 4, 16), np.float32))


def test_compile_spectral_conv_factory():
    w = np.ones((4, 4), np.complex64)
    assert isinstance(compile_spectral_conv(w, 8), CompiledSpectralConv1D)
    assert isinstance(compile_spectral_conv(w, (8,)), CompiledSpectralConv1D)
    assert isinstance(
        compile_spectral_conv(w, (8, 4)), CompiledSpectralConv2D
    )
    with pytest.raises(ValueError):
        compile_spectral_conv(w, (8, 4, 2))
    assert compile_spectral_conv(w, 8, symmetric=True).symmetric
    assert compile_spectral_conv(w, (8, 4), symmetric=True).symmetric


# ---------------------------------------------------------------------------
# symmetric (half-spectrum) executors
# ---------------------------------------------------------------------------

def _sym_oracle_1d(x, w, modes):
    n = x.shape[-1]
    xk = np.fft.rfft(x, axis=-1)[..., :modes]
    yk = np.einsum("bim,io->bom", xk, w)
    out_ft = np.zeros((x.shape[0], w.shape[1], n // 2 + 1), dtype=complex)
    out_ft[..., :modes] = yk
    return np.fft.irfft(out_ft, n=n, axis=-1)


def _sym_oracle_2d(x, w, mx, my):
    b, _, dim_x, dim_y = x.shape
    xk = np.fft.rfft(x, axis=3)[..., :my]
    xk = np.fft.fft(xk, axis=2)[:, :, :mx]
    yk = np.einsum("bimn,io->bomn", xk, w)
    out_ft = np.zeros((b, w.shape[1], dim_x, dim_y // 2 + 1), dtype=complex)
    out_ft[:, :, :mx, :my] = yk
    return np.fft.irfft(np.fft.ifft(out_ft, axis=2), n=dim_y, axis=3)


@pytest.mark.parametrize("dtype,atol", [(np.float32, 1e-3), (np.float64, 1e-9)])
def test_symmetric_executor_1d_matches_oracle(backend, dtype, atol):
    rng = np.random.default_rng(6)
    w = _weight(5, 3, np.complex128, rng)
    conv = CompiledSpectralConv1D(w, 8, symmetric=True)
    x = _x((4, 5, 64), dtype, rng)
    y = conv(x)
    assert y.dtype == dtype  # real in, real out, same precision
    np.testing.assert_allclose(
        y, _sym_oracle_1d(x.astype(np.float64), w, 8), atol=atol
    )


@pytest.mark.parametrize("dtype,atol", [(np.float32, 1e-3), (np.float64, 1e-9)])
def test_symmetric_executor_2d_matches_oracle(backend, dtype, atol):
    rng = np.random.default_rng(7)
    w = _weight(4, 6, np.complex128, rng)
    conv = CompiledSpectralConv2D(w, 4, 8, symmetric=True)
    x = _x((2, 4, 16, 32), dtype, rng)
    y = conv(x)
    assert y.dtype == dtype
    np.testing.assert_allclose(
        y, _sym_oracle_2d(x.astype(np.float64), w, 4, 8), atol=atol
    )


def test_symmetric_executor_reuse_bit_identical(backend):
    """Staging is cached per (dtype, geometry); repeated and interleaved
    calls through the shared rfft/irfft plans are deterministic."""
    rng = np.random.default_rng(8)
    w = _weight(3, 3, np.complex64, rng)
    conv = CompiledSpectralConv1D(w, 4, symmetric=True)
    xs = [_x((b, 3, 32), np.float32, rng) for b in (2, 7, 1)]
    first = [conv(x) for x in xs]
    second = [conv(x) for x in reversed(xs)][::-1]
    for g1, g2 in zip(first, second):
        assert _bit_equal(g1, g2)
    assert len(conv._staged) == 1


def test_symmetric_executor_validation():
    w = np.ones((4, 4), np.complex64)
    with pytest.raises(ValueError, match="modes <= X/2"):
        CompiledSpectralConv1D(w, 12, symmetric=True)(
            np.ones((2, 4, 16), np.float32)
        )
    with pytest.raises(ValueError, match="real input"):
        CompiledSpectralConv1D(w, 4, symmetric=True)(
            np.ones((2, 4, 16), np.complex64)
        )
    with pytest.raises(ValueError, match="modes_y <= Y/2"):
        CompiledSpectralConv2D(w, 4, 12, symmetric=True)(
            np.ones((2, 4, 16, 16), np.float32)
        )


def test_symmetric_executor_accepts_precomputed_spectrum(backend):
    """Passing the truncated spectrum skips the forward R2C pass but
    must produce the same result as computing it in the executor."""
    rng = np.random.default_rng(10)
    w = _weight(4, 3, np.complex128, rng)
    x = _x((3, 4, 64), np.float64, rng)
    conv = CompiledSpectralConv1D(w, 8, symmetric=True)
    xk = np.fft.rfft(x, axis=-1)[..., :8]
    np.testing.assert_allclose(conv(x, xk_trunc=xk), conv(x), atol=1e-9)
    conv2 = CompiledSpectralConv2D(w, 4, 8, symmetric=True)
    x2 = _x((2, 4, 16, 32), np.float64, rng)
    xk2 = np.fft.fft(np.fft.rfft(x2, axis=3)[..., :8], axis=2)[:, :, :4]
    np.testing.assert_allclose(conv2(x2, xk_trunc=xk2), conv2(x2), atol=1e-9)


def test_symmetric_executor_rejects_malformed_xk_trunc():
    rng = np.random.default_rng(11)
    w = _weight(4, 3, np.complex64, rng)
    x = _x((2, 4, 32), np.float32, rng)
    conv = CompiledSpectralConv1D(w, 8, symmetric=True)
    good = np.fft.rfft(x, axis=-1)[..., :8].astype(np.complex64)
    with pytest.raises(ValueError, match="xk_trunc"):
        conv(x, xk_trunc=good[..., :6])  # wrong mode count
    with pytest.raises(ValueError, match="xk_trunc"):
        conv(x, xk_trunc=good[:1])  # wrong batch
    with pytest.raises(ValueError, match="symmetric"):
        CompiledSpectralConv1D(w, 8)(x, xk_trunc=good)  # asymmetric mode
    conv2 = CompiledSpectralConv2D(w, 4, 8, symmetric=True)
    x2 = _x((2, 4, 16, 32), np.float32, rng)
    with pytest.raises(ValueError, match="xk_trunc"):
        conv2(x2, xk_trunc=np.zeros((2, 4, 8, 4), np.complex64))


def test_symmetric_layer_spectrum_cache_owns_its_memory(backend):
    """The cached activation spectrum must not pin the full half
    spectrum (it is held across the whole optimizer step).  The pruned
    R2C path may hand back an exact-size reshape view, so the invariant
    is on the pinned memory, not the base's shape."""
    from repro.nn.modules import SpectralConv1d

    rng = np.random.default_rng(12)
    m = SpectralConv1d(2, 2, 4, rng, symmetric=True)
    m(rng.standard_normal((1, 2, 256)))
    assert m._xk.base is None or m._xk.base.size == m._xk.size


def test_execution_plan_compile_executor_symmetric():
    rng = np.random.default_rng(9)
    p = plan(FNO1DProblem(batch=4, hidden=6, dim_x=64, modes=16))
    w = _weight(6, 6, np.complex64, rng)
    conv = p.compile_executor(w, symmetric=True)
    assert isinstance(conv, CompiledSpectralConv1D) and conv.symmetric
    x = _x((4, 6, 64), np.float32, rng)
    np.testing.assert_allclose(
        conv(x), _sym_oracle_1d(x.astype(np.float64), w, 16), atol=1e-3
    )


# ---------------------------------------------------------------------------
# plan attachment (plan once -> execute many)
# ---------------------------------------------------------------------------

def test_execution_plan_compile_executor_1d():
    rng = np.random.default_rng(4)
    p = plan(FNO1DProblem(batch=8, hidden=6, dim_x=64, modes=16))
    w = _weight(6, 6, np.complex64, rng)
    conv = p.compile_executor(w)
    assert isinstance(conv, CompiledSpectralConv1D)
    x = _x((8, 6, 64), np.float32, rng)
    assert _bit_equal(conv(x), legacy.fused_fft_gemm_ifft_1d(x, w, 16))


def test_execution_plan_compile_executor_2d_and_validation():
    rng = np.random.default_rng(5)
    p = plan(FNO2DProblem(batch=2, hidden=4, dim_x=16, dim_y=8,
                          modes_x=4, modes_y=4))
    conv = p.compile_executor(_weight(4, 4, np.complex64, rng))
    assert isinstance(conv, CompiledSpectralConv2D)
    with pytest.raises(ValueError, match="hidden"):
        p.compile_executor(_weight(5, 4, np.complex64, rng))


# ---------------------------------------------------------------------------
# parallel sweep runner
# ---------------------------------------------------------------------------

def test_parallel_map_speedups_matches_serial():
    problems = [
        FNO1DProblem(batch=64, hidden=k, dim_x=128, modes=64)
        for k in (16, 32, 48, 64, 80)
    ]
    runner = Runner()
    serial = runner.map_speedups(problems)
    parallel = runner.map_speedups(problems, workers=2)
    assert serial == parallel


def test_parallel_sweep_matches_serial():
    problems = [
        FNO2DProblem(batch=8, hidden=k, dim_x=32, dim_y=16,
                     modes_x=8, modes_y=8)
        for k in (16, 32, 64)
    ]
    runner = Runner()
    serial = runner.sweep(problems, ("A", "D", "best"))
    parallel = runner.sweep(problems, ("A", "D", "best"), workers=2)
    assert serial == parallel


def test_parallel_heatmap_matches_serial():
    from repro.analysis.sweeps import heatmap_1d

    clear_plan_cache()
    serial = heatmap_1d("t", 128, 64, [8, 24], [7, 9, 11])
    parallel = heatmap_1d("t", 128, 64, [8, 24], [7, 9, 11], workers=2)
    assert np.array_equal(serial.values, parallel.values)


def test_speedup_memoised_on_plan():
    p = plan(FNO1DProblem(batch=16, hidden=16, dim_x=128, modes=64), "D")
    first = p.speedup_vs_baseline()
    assert p._speedup is not None
    assert p.speedup_vs_baseline() == first
