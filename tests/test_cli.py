"""Tests for the ``python -m repro`` command-line interface."""

import pathlib

import pytest

from repro.__main__ import main


class TestLadder:
    def test_1d_ladder_prints_stages(self, capsys):
        assert main(["ladder", "--dim", "1", "--k", "32", "--batch", "64"]) == 0
        out = capsys.readouterr().out
        for stage in ("A", "B", "C", "D"):
            assert f"stage {stage}:" in out
        assert "pytorch-1d" in out

    def test_2d_ladder(self, capsys):
        assert main(["ladder", "--dim", "2", "--k", "16", "--batch", "4"]) == 0
        assert "pytorch-2d" in capsys.readouterr().out


class TestClaims:
    def test_claims_show_exact_numbers(self, capsys):
        assert main(["claims"]) == 0
        out = capsys.readouterr().out
        assert "37.5%" in out
        assert "6.25%" in out
        assert "100.00%" in out


class TestFigures:
    def test_figures_written(self, tmp_path, capsys):
        out_dir = tmp_path / "report"
        assert main(["figures", "--out", str(out_dir)]) == 0
        written = {p.name for p in out_dir.iterdir()}
        expected = {f"fig{n}.txt" for n in
                    (10, 11, 12, 13, 14, 15, 16, 17, 18, 19)}
        assert expected <= written
        text = (out_dir / "fig14.txt").read_text()
        assert "mean" in text

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
