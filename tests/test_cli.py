"""Tests for the ``python -m repro`` command-line interface."""

import json
import pathlib

import pytest

from repro.__main__ import main


class TestLadder:
    def test_1d_ladder_prints_stages(self, capsys):
        assert main(["ladder", "--dim", "1", "--k", "32", "--batch", "64"]) == 0
        out = capsys.readouterr().out
        for stage in ("A", "B", "C", "D"):
            assert f"stage {stage}:" in out
        assert "pytorch-1d" in out

    def test_2d_ladder(self, capsys):
        assert main(["ladder", "--dim", "2", "--k", "16", "--batch", "4"]) == 0
        assert "pytorch-2d" in capsys.readouterr().out

    def test_2d_ladder_configurable_dims(self, capsys):
        """Both spatial dims are flag-settable (no hardcoded DimX=256)."""
        assert main(["ladder", "--dim", "2", "--k", "16", "--batch", "4",
                     "--fft-x", "128", "--fft-y", "64", "--modes", "32",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        geom = payload["stages"][0]["problem"]
        assert geom["spatial_shape"] == [128, 64]
        assert geom["modes_shape"] == [32, 32]

    def test_legacy_fft_flag_still_sets_dim_y(self, capsys):
        assert main(["ladder", "--dim", "2", "--k", "16", "--batch", "4",
                     "--fft", "64", "--modes", "32", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stages"][0]["problem"]["spatial_shape"] == [256, 64]

    def test_json_output_structure(self, capsys):
        assert main(["ladder", "--dim", "1", "--k", "32", "--batch", "64",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        stages = {s["stage"]: s for s in payload["stages"]}
        assert set(stages) == {"pytorch", "A", "B", "C", "D"}
        assert payload["best_stage"] in {"A", "B", "C", "D"}
        assert stages["pytorch"]["speedup_vs_baseline_percent"] == 0.0
        assert stages["D"]["total_time_ms"] < stages["pytorch"]["total_time_ms"]
        assert stages["D"]["kernel_launches"] == 1

    def test_device_flag(self, capsys):
        assert main(["ladder", "--dim", "1", "--k", "32", "--batch", "64",
                     "--device", "h100", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["device"].startswith("H100")

    def test_unknown_device_rejected(self, capsys):
        assert main(["ladder", "--device", "abacus"]) == 2
        err = capsys.readouterr().err
        assert "unknown device 'abacus'" in err
        assert "a100" in err  # lists the registered names

    def test_zero_fft_size_hits_validation(self, capsys):
        """--fft-x 0 must not silently fall back to the default size."""
        assert main(["ladder", "--dim", "1", "--fft-x", "0"]) == 2
        assert "power of two" in capsys.readouterr().err

    def test_fft_y_rejected_for_1d(self, capsys):
        """--fft-y with --dim 1 must error, not silently run the default."""
        assert main(["ladder", "--dim", "1", "--fft-y", "64"]) == 2
        assert "--fft-y only applies to --dim 2" in capsys.readouterr().err


class TestClaims:
    def test_claims_show_exact_numbers(self, capsys):
        assert main(["claims"]) == 0
        out = capsys.readouterr().out
        assert "37.5%" in out
        assert "6.25%" in out
        assert "100.00%" in out

    def test_claims_json(self, capsys):
        assert main(["claims", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        frac = {(r["n"], r["keep"]): r["fraction"] for r in payload["fig05"]}
        assert frac[(4, 1)] == pytest.approx(0.375)
        assert payload["fig07"]["forward_turbofno"] == 1.0
        assert payload["fig08"]["epilogue_naive"] == pytest.approx(0.25)


class TestServeBench:
    def test_serve_bench_reports_bit_identity(self, capsys):
        assert main(["serve-bench", "--requests", "12", "--k", "8",
                     "--signal-batch", "1"]) == 0
        out = capsys.readouterr().out
        assert "bit-identical" in out
        assert "req/s" in out

    def test_serve_bench_json_with_backend_and_workers(self, capsys):
        assert main(["serve-bench", "--requests", "8", "--k", "8",
                     "--signal-batch", "1", "--backend", "numpy",
                     "--workers", "2", "--max-batch", "4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "numpy"
        assert payload["requests"] == 8
        assert payload["stats"]["backend"] == "numpy"
        assert payload["stats"]["executor_pool"] >= 1

    def test_serve_bench_rejects_bad_backend(self):
        with pytest.raises(SystemExit):  # argparse choices
            main(["serve-bench", "--backend", "cuda"])


class TestFigures:
    def test_figures_written(self, tmp_path, capsys):
        out_dir = tmp_path / "report"
        assert main(["figures", "--out", str(out_dir)]) == 0
        written = {p.name for p in out_dir.iterdir()}
        expected = {f"fig{n}.txt" for n in
                    (10, 11, 12, 13, 14, 15, 16, 17, 18, 19)}
        assert expected <= written
        text = (out_dir / "fig14.txt").read_text()
        assert "mean" in text

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestLint:
    def test_repo_lints_clean(self, capsys):
        assert main(["lint"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_json_report_with_rule_filter(self, capsys):
        assert main(["lint", "--json", "--rule", "no-assert"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 0
        assert payload["rules"] == ["no-assert"]
        assert payload["findings"] == []

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in ("determinism", "cache-scope", "shm-lifecycle",
                     "lock-order", "serve-except", "worker-protocol",
                     "no-assert", "rng-truthiness"):
            assert name in out
        assert "allow src/repro/core/autotune.py" in out

    def test_findings_exit_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "core"
        bad.mkdir(parents=True)
        (bad / "bad.py").write_text("assert True\n")
        assert main(["lint", "--root", str(tmp_path)]) == 1
        assert "[no-assert]" in capsys.readouterr().out

    def test_unknown_rule_rejected(self, capsys):
        assert main(["lint", "--rule", "made-up"]) == 2
        assert "unknown rule" in capsys.readouterr().err
