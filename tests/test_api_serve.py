"""Tests for ``repro.api.serve``: the multi-process serving front-end.

Covers the routing layer (stable geometry hashing, shard assignment),
the pool happy path (bit-identity vs a serial one-worker ``Session`` at
``workers=4`` — the acceptance bar — and per-geometry shard affinity in
``stats()``), backpressure (immediate ``PoolSaturated`` under
``saturation="raise"``, timeout under ``"block"``, oversized requests),
worker lifecycle (recycling after ``max_requests_per_worker`` with
warmup handoff, SIGKILL mid-stream with deterministic retry-or-fail),
and shared-memory hygiene (every segment the pool ever created is
unlinked on ``close()``, asserted by re-attach failure).

Failure *semantics* — fault injection, deadlines, hang detection,
circuit-breaker degradation, ``ResultTimeout``/``cancel()`` — live in
``test_api_serve_faults.py``; the raw-signal crash tests here remain as
the transport-level safety net the scripted faults build on.

Process pools are slow to start; the suite keeps pools small (1-4
workers, numpy backend) and shares none between tests so a crashed
worker cannot poison a neighbour.
"""

from __future__ import annotations

import os
import signal
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.api import Session
from repro.api.serve import (
    PoolSaturated,
    ServePool,
    WorkerCrashed,
    format_geometry,
    geometry_hash,
    geometry_key,
    shard_for,
)
from repro.api.session import SpectralModel

RNG = np.random.default_rng(20260808)


def _weight(k=4):
    return ((RNG.standard_normal((k, k)) + 1j * RNG.standard_normal((k, k)))
            / k).astype(np.complex64)


def _signal(shape):
    return (RNG.standard_normal(shape)
            + 1j * RNG.standard_normal(shape)).astype(np.complex64)


def _mixed_requests(n=32, hidden=4):
    """A mixed-geometry stream: several FFT sizes and mode counts."""
    w = _weight(hidden)
    models = [(w, m) for m in (16, 32, 64)]
    model_2d = (w, (8, 8))
    reqs = []
    for i in range(n):
        if i % 4 == 3:
            reqs.append((model_2d, _signal((2, hidden, 64, 64))))
        else:
            dim_x = 128 if i % 2 else 256
            reqs.append((models[i % 3], _signal((2, hidden, dim_x))))
    return reqs


def _serial_results(reqs):
    with_session = Session(backend="numpy")
    try:
        return with_session.infer_many(reqs, max_batch=32)
    finally:
        with_session.close()


def _assert_identical(refs, outs):
    assert len(refs) == len(outs)
    for i, (a, b) in enumerate(zip(refs, outs)):
        assert a.dtype == b.dtype, f"request {i}: dtype {b.dtype} != {a.dtype}"
        assert np.array_equal(a, b), f"request {i}: outputs differ"


# ---------------------------------------------------------------------------
# routing
# ---------------------------------------------------------------------------

class TestRouter:
    def test_geometry_key_fields(self):
        spec = SpectralModel(_weight(), 32)
        x = _signal((2, 4, 128))
        assert geometry_key(spec, x) == (1, (128,), (32,), "complex64")

    def test_hash_is_stable_across_calls_and_batch_size(self):
        spec = SpectralModel(_weight(), 32)
        k1 = geometry_key(spec, _signal((2, 4, 128)))
        k2 = geometry_key(spec, _signal((64, 4, 128)))
        assert k1 == k2  # batch is not part of the routing key
        assert geometry_hash(k1) == geometry_hash(k2)

    def test_hash_is_stable_across_processes(self):
        # blake2b of the repr, not builtin hash(): PYTHONHASHSEED-proof.
        import subprocess
        import sys

        key = (1, (128,), (64,), "complex64")
        code = (
            "from repro.api.serve import geometry_hash;"
            f"print(geometry_hash({key!r}))"
        )
        env = dict(os.environ, PYTHONHASHSEED="12345")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), "src") if p
        )
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            env=env, check=True,
        )
        assert int(out.stdout.strip()) == geometry_hash(key)

    def test_distinct_geometries_hash_apart(self):
        spec = SpectralModel(_weight(), 32)
        keys = {
            geometry_key(spec, _signal((2, 4, n))) for n in (64, 128, 256)
        }
        assert len({geometry_hash(k) for k in keys}) == 3

    def test_shard_for_range(self):
        key = (1, (128,), (64,), "complex64")
        for w in (1, 2, 3, 8):
            assert 0 <= shard_for(key, w) < w

    def test_format_geometry(self):
        assert format_geometry((1, (128,), (64,), "complex64")) == (
            "1d:128:m64:complex64"
        )
        assert format_geometry((2, (64, 64), (8, 8), "complex64")) == (
            "2d:64x64:m8x8:complex64"
        )


# ---------------------------------------------------------------------------
# pool happy path
# ---------------------------------------------------------------------------

class TestServePoolBitIdentity:
    def test_workers4_bit_identical_to_serial_session(self):
        reqs = _mixed_requests(32)
        refs = _serial_results(reqs)
        with ServePool(workers=4, backend="numpy") as pool:
            outs = pool.infer_many(reqs, timeout=120)
        _assert_identical(refs, outs)

    def test_single_worker_pool_matches_serial(self):
        reqs = _mixed_requests(12)
        refs = _serial_results(reqs)
        with ServePool(workers=1, backend="numpy") as pool:
            outs = pool.infer_many(reqs, timeout=120)
        _assert_identical(refs, outs)

    def test_submit_returns_future_with_routing_metadata(self):
        model = (_weight(), 32)
        x = _signal((2, 4, 128))
        with ServePool(workers=2, backend="numpy") as pool:
            fut = pool.submit(model, x)
            y = fut.result(120)
            assert fut.done()
            assert fut.worker == pool.shard_of(model, x)
            assert fut.geometry == "1d:128:m32:complex64"
        assert np.array_equal(y, _serial_results([(model, x)])[0])

    def test_real_dtype_requests(self):
        model = (_weight(), 16)
        x = RNG.standard_normal((2, 4, 128)).astype(np.float32)
        refs = _serial_results([(model, x)])
        with ServePool(workers=2, backend="numpy") as pool:
            outs = pool.infer_many([(model, x)], timeout=120)
        _assert_identical(refs, outs)


class TestServePoolStats:
    def test_per_geometry_shard_affinity(self):
        reqs = _mixed_requests(24)
        with ServePool(workers=4, backend="numpy") as pool:
            pool.infer_many(reqs, timeout=120)
            st = pool.stats(timeout=30)
        # Every geometry reports exactly the shard the router computes.
        for name, entry in st["per_geometry"].items():
            assert 0 <= entry["worker"] < 4
            assert entry["requests"] > 0
            assert entry["failed"] == 0
        # Shape parity with Session.stats(): requests / batches /
        # per_geometry / admission all present.
        assert st["requests"] == len(reqs)
        assert st["admission"]["submitted"] == len(reqs)
        assert st["admission"]["completed"] == len(reqs)
        assert st["batches"] >= 1
        assert len(st["per_worker"]) == 4
        served = sum(w["served"] or 0 for w in st["per_worker"])
        assert served == len(reqs)

    def test_geometry_pinned_to_router_shard(self):
        model = (_weight(), 64)
        x = _signal((2, 4, 128))
        with ServePool(workers=3, backend="numpy") as pool:
            expect = pool.shard_of(model, x)
            for _ in range(5):
                pool.infer(model, x, timeout=120)
            st = pool.stats(timeout=30)
            entry = st["per_geometry"]["1d:128:m64:complex64"]
            assert entry["worker"] == expect
            assert entry["requests"] == 5


# ---------------------------------------------------------------------------
# configuration and validation
# ---------------------------------------------------------------------------

class TestServePoolConfig:
    def test_workers_default_from_repro_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        pool = ServePool(backend="numpy")
        try:
            assert pool.workers == 2
        finally:
            pool.close()

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            ServePool(workers=0, backend="numpy")
        with pytest.raises(ValueError):
            ServePool(backend="numpy", saturation="maybe")
        with pytest.raises(ValueError):
            ServePool(backend="numpy", on_crash="shrug")
        with pytest.raises(ValueError):
            ServePool(backend="numpy", dtype_policy="float16")
        with pytest.raises((ValueError, RuntimeError)):
            ServePool(backend="not-a-backend")

    def test_non_model_request_rejected(self):
        with ServePool(workers=1, backend="numpy") as pool:
            with pytest.raises(TypeError):
                pool.submit(lambda x: x, _signal((2, 4, 128)))
            with pytest.raises(ValueError):
                pool.submit((_weight(), 32), _signal((4, 128)))

    def test_closed_pool_rejects_work(self):
        pool = ServePool(workers=1, backend="numpy")
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError):
            pool.infer((_weight(), 32), _signal((2, 4, 128)))


# ---------------------------------------------------------------------------
# backpressure
# ---------------------------------------------------------------------------

class TestBackpressure:
    def test_oversized_request_raises_immediately(self):
        with ServePool(workers=1, backend="numpy",
                       ring_bytes=1 << 16) as pool:
            with pytest.raises(PoolSaturated):
                # 4 MiB of complex64 against a 64 KiB ring: never fits.
                pool.submit((_weight(), 32), _signal((32, 4, 4096)))

    def test_saturation_raise_on_stopped_worker(self):
        model = (_weight(), 32)
        with ServePool(workers=1, backend="numpy", queue_depth=1,
                       saturation="raise") as pool:
            x = _signal((2, 4, 128))
            pool.infer(model, x, timeout=120)  # depth bound admits one
            pid = pool.worker_pids()[0]
            os.kill(pid, signal.SIGSTOP)
            try:
                filler = pool.submit(model, x)
                with pytest.raises(PoolSaturated):
                    pool.submit(model, x)
            finally:
                os.kill(pid, signal.SIGCONT)
            filler.result(120)
            assert pool.stats(timeout=30)["admission"]["rejected"] == 1

    def test_saturation_block_times_out(self):
        model = (_weight(), 32)
        with ServePool(workers=1, backend="numpy",
                       queue_depth=1) as pool:
            x = _signal((2, 4, 128))
            pool.infer(model, x, timeout=120)
            pid = pool.worker_pids()[0]
            os.kill(pid, signal.SIGSTOP)
            try:
                filler = pool.submit(model, x)
                with pytest.raises(PoolSaturated):
                    pool.submit(model, x, block=True, timeout=0.2)
            finally:
                os.kill(pid, signal.SIGCONT)
            filler.result(120)


# ---------------------------------------------------------------------------
# worker lifecycle: recycle and crash
# ---------------------------------------------------------------------------

class TestLifecycle:
    def test_recycle_after_request_budget(self):
        model = (_weight(), 32)
        with ServePool(workers=1, backend="numpy",
                       max_requests_per_worker=3) as pool:
            pid0 = pool.worker_pids()[0]
            xs = [_signal((2, 4, 128)) for _ in range(7)]
            refs = _serial_results([(model, x) for x in xs])
            outs = [pool.infer(model, x, timeout=120) for x in xs]
            _assert_identical(refs, outs)
            st = pool.stats(timeout=30)
            assert st["admission"]["recycles"] >= 1
            assert pool.worker_pids()[0] != pid0

    def test_sigkill_mid_stream_retries_deterministically(self):
        model = (_weight(), 32)
        with ServePool(workers=1, backend="numpy", queue_depth=16,
                       on_crash="retry") as pool:
            x0 = _signal((2, 4, 128))
            pool.infer(model, x0, timeout=120)  # warm; records geometry
            pid = pool.worker_pids()[0]
            os.kill(pid, signal.SIGSTOP)  # hold requests in flight
            xs = [_signal((2, 4, 128)) for _ in range(5)]
            futs = [pool.submit(model, x) for x in xs]
            time.sleep(0.2)
            os.kill(pid, signal.SIGKILL)
            os.kill(pid, signal.SIGCONT)
            outs = [f.result(120) for f in futs]
            refs = _serial_results([(model, x) for x in xs])
            _assert_identical(refs, outs)
            st = pool.stats(timeout=30)
            assert st["admission"]["crashes"] == 1
            assert st["admission"]["retried"] == len(xs)
            assert st["admission"]["failed"] == 0
            # The replacement took over the shard and still serves.
            assert pool.worker_pids()[0] != pid
            x1 = _signal((2, 4, 128))
            assert np.array_equal(
                pool.infer(model, x1, timeout=120),
                _serial_results([(model, x1)])[0],
            )

    def test_sigkill_mid_stream_fails_deterministically(self):
        model = (_weight(), 32)
        with ServePool(workers=1, backend="numpy", queue_depth=16,
                       on_crash="fail") as pool:
            pool.infer(model, _signal((2, 4, 128)), timeout=120)
            pid = pool.worker_pids()[0]
            os.kill(pid, signal.SIGSTOP)
            futs = [pool.submit(model, _signal((2, 4, 128)))
                    for _ in range(3)]
            time.sleep(0.2)
            os.kill(pid, signal.SIGKILL)
            os.kill(pid, signal.SIGCONT)
            for fut in futs:
                with pytest.raises(WorkerCrashed):
                    fut.result(120)
            st = pool.stats(timeout=30)
            assert st["admission"]["crashes"] == 1
            assert st["admission"]["failed"] == len(futs)
            assert st["admission"]["retried"] == 0
            # Warmed replacement serves on.
            x1 = _signal((2, 4, 128))
            assert np.array_equal(
                pool.infer(model, x1, timeout=120),
                _serial_results([(model, x1)])[0],
            )


# ---------------------------------------------------------------------------
# shared-memory hygiene
# ---------------------------------------------------------------------------

class TestSegmentHygiene:
    def test_every_segment_unlinked_on_close(self):
        pool = ServePool(workers=2, backend="numpy")
        pool.infer_many(_mixed_requests(8), timeout=120)
        names = pool.segment_names()
        assert len(names) == 4  # two rings per worker
        assert pool.live_segment_names() == names
        pool.close()
        assert pool.live_segment_names() == []
        assert pool.segment_names() == names  # audit trail survives close
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_crash_replacement_reuses_rings_no_new_segments(self):
        model = (_weight(), 32)
        with ServePool(workers=1, backend="numpy",
                       on_crash="retry") as pool:
            pool.infer(model, _signal((2, 4, 128)), timeout=120)
            before = pool.segment_names()
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            # Wait for the replacement, then serve through it.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                pids = pool.worker_pids()
                if pids[0] is not None and pids[0] != 0:
                    try:
                        pool.infer(model, _signal((2, 4, 128)), timeout=60)
                        break
                    except WorkerCrashed:  # pragma: no cover - re-race
                        continue
                time.sleep(0.05)
            assert pool.segment_names() == before
        for name in before:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


class TestInfrastructureError:
    """The typed-failure audit: substrate faults in the worker must
    surface as ``InfrastructureError`` (retry-worthy), never as the
    generic ``ServeError`` a model/geometry failure produces."""

    def test_is_a_typed_serve_error(self):
        from repro.api.serve import InfrastructureError, ServeError

        assert issubclass(InfrastructureError, ServeError)

    def test_serve_one_maps_substrate_faults(self):
        from repro.api.serve.health import InfrastructureError
        from repro.api.serve.worker import _WorkerBody

        body = _WorkerBody.__new__(_WorkerBody)  # _serve_one needs no state

        def oom():
            raise MemoryError("allocation of 2 GiB failed")

        out = body._serve_one(oom)
        assert isinstance(out, InfrastructureError)
        assert "MemoryError" in str(out)

    def test_serve_one_returns_model_errors_unwrapped(self):
        from repro.api.serve.health import InfrastructureError
        from repro.api.serve.worker import _WorkerBody

        body = _WorkerBody.__new__(_WorkerBody)

        def bad_geometry():
            raise ValueError("modes exceed n//2")

        out = body._serve_one(bad_geometry)
        assert isinstance(out, ValueError)
        assert not isinstance(out, InfrastructureError)

    def test_pool_reconstructs_the_type_from_the_wire(self):
        """The worker ships ``("err", rid, "InfrastructureError", msg)``;
        the parent's completion path must rebuild the typed error, not
        flatten it into ServeError."""
        import repro.api.serve.pool as pool_mod
        import inspect

        src = inspect.getsource(pool_mod.ServePool._complete)
        assert "InfrastructureError(message)" in src
