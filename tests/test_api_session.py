"""Tests for ``repro.api.Session``: the stateful execution context.

Covers the session-owned caches (plans, FFT plans, executor pool) and
the one-path cache clearing, backend isolation (sessions with different
backends never share plans or workspaces), the serving path
(``infer``/``infer_many`` bit-identity across micro-batching, threading
and backends), warmup/stats, dtype policy, the ``REPRO_WORKERS``
override, and the module-level facade compatibility (``api.plan`` as a
thin wrapper over the default session).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import api
from repro.api.runner import default_workers
from repro.core.compiled import CompiledSpectralConv1D
from repro.core.config import FNO1DProblem, FNO2DProblem
from repro.core.stages import FusionStage
from repro.fft.compiled import current_plan_caches, default_plan_caches
from repro.nn.fno import FNO1d

PROB_1D = FNO1DProblem.from_m_spatial(2**16, 64, 128, 64)
PROB_2D = FNO2DProblem(batch=8, hidden=32, dim_x=256, dim_y=128,
                       modes_x=64, modes_y=64)


def _weight(rng, k=8):
    return ((rng.standard_normal((k, k)) + 1j * rng.standard_normal((k, k)))
            / k).astype(np.complex64)


def _requests(rng, w, n_requests=24, hidden=8, batch=2,
              geometries=((128, 32), (256, 32))):
    reqs = []
    for i in range(n_requests):
        dim_x, modes = geometries[i % len(geometries)]
        x = (rng.standard_normal((batch, hidden, dim_x))
             + 1j * rng.standard_normal((batch, hidden, dim_x))
             ).astype(np.complex64)
        reqs.append(((w, modes), x))
    return reqs


class TestImportPurity:
    def test_import_repro_does_not_touch_kernel_loader(self):
        """`import repro` (and constructing an auto session) must not
        invoke the C compiler — auto resolves lazily at execution."""
        import subprocess
        import sys

        code = (
            "import repro\n"
            "repro.api.Session().close()\n"
            "from repro.fft import _ckernels\n"
            "assert _ckernels._state['tried'] is False, _ckernels._state\n"
        )
        res = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd=str(__import__("pathlib").Path(__file__).parent.parent),
        )
        assert res.returncode == 0, res.stderr


class TestSessionConstruction:
    def test_defaults_share_process_caches(self):
        s = api.Session()
        assert s.plan_caches is default_plan_caches()
        s.close()

    def test_private_caches_are_private(self):
        s = api.Session(private_caches=True)
        assert s.plan_caches is not default_plan_caches()
        s.close()

    def test_non_auto_backend_gets_private_caches(self):
        s = api.Session(backend="numpy")
        assert s.plan_caches is not default_plan_caches()
        assert s.plan_caches.kernels() is None
        s.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            api.Session(backend="cuda")

    def test_unknown_dtype_policy_rejected(self):
        with pytest.raises(ValueError, match="dtype_policy"):
            api.Session(dtype_policy="float16")

    def test_context_manager_closes(self):
        with api.Session() as s:
            s.plan(PROB_1D, "D")
        with pytest.raises(RuntimeError, match="closed"):
            s.plan(PROB_1D, "D")
        with pytest.raises(RuntimeError, match="closed"):
            s.infer((np.eye(8, dtype=np.complex64), 4), np.zeros((1, 8, 16)))
        s.close()  # idempotent


class TestSessionPlanning:
    def test_plan_matches_module_facade(self):
        s = api.Session()
        p = s.plan(PROB_1D, FusionStage.FUSED_ALL)
        # Same config/device defaults -> same modelled numbers as the
        # module-level facade (served from separate caches).
        q = api.plan(PROB_1D, FusionStage.FUSED_ALL)
        assert p.total_time == q.total_time
        assert p.stage is q.stage
        s.close()

    def test_session_cache_is_isolated(self):
        s1, s2 = api.Session(), api.Session()
        p1 = s1.plan(PROB_1D, "D")
        p2 = s2.plan(PROB_1D, "D")
        assert p1 is not p2  # distinct plan caches
        assert p1 is s1.plan(PROB_1D, "D")  # but memoised within a session
        assert s1.plan_cache_info().hits >= 1
        s1.close(), s2.close()

    def test_best_resolution_and_baseline_stay_in_session(self):
        s = api.Session()
        for stage in FusionStage.ladder():
            s.plan(PROB_1D, stage)
        misses = s.plan_cache_info().misses
        best = s.plan(PROB_1D)  # BEST
        assert s.plan_cache_info().misses == misses + 1
        assert best.stage in FusionStage.ladder()
        # baseline() routes through the owning session's cache
        before = s.plan_cache_info().currsize
        base = best.baseline()
        assert base.stage is FusionStage.PYTORCH
        assert s.plan_cache_info().currsize == before + 1
        s.close()

    def test_module_plan_is_default_session_backed(self):
        api.clear_plan_cache()
        p = api.plan(PROB_1D, "D")
        assert p is api.default_session().plan(PROB_1D, "D")


class TestClearAllCaches:
    """Satellite: one path empties plans, FFT plans and executors."""

    def _populate(self, s, rng):
        s.plan(PROB_1D, "D")
        w = _weight(rng)
        x = (rng.standard_normal((2, 8, 64))
             + 1j * rng.standard_normal((2, 8, 64))).astype(np.complex64)
        s.infer((w, 16), x)
        assert s.plan_cache_info().currsize > 0
        assert sum(i.currsize for i in s.plan_caches.cache_info()) > 0
        assert s.executor_pool_size() == 1

    def test_clear_all_caches_empties_everything(self, rng):
        s = api.Session(private_caches=True)
        self._populate(s, rng)
        s.clear_all_caches()
        assert s.plan_cache_info().currsize == 0
        assert sum(i.currsize for i in s.plan_caches.cache_info()) == 0
        assert s.executor_pool_size() == 0
        s.close()

    def test_clear_plan_cache_alone_keeps_fft_plans(self, rng):
        """The seed inconsistency, now explicit: clear_plan_cache drops
        only plans; clear_all_caches is the full teardown."""
        s = api.Session(private_caches=True)
        self._populate(s, rng)
        s.clear_plan_cache()
        assert s.plan_cache_info().currsize == 0
        assert sum(i.currsize for i in s.plan_caches.cache_info()) > 0
        assert s.executor_pool_size() == 1
        s.close()

    def test_module_level_clear_all_caches(self, rng):
        s = api.default_session()
        s.plan(PROB_1D, "D")
        w = _weight(rng)
        x = (rng.standard_normal((2, 8, 64))
             + 1j * rng.standard_normal((2, 8, 64))).astype(np.complex64)
        s.infer((w, 16), x)
        api.clear_all_caches()
        assert api.plan_cache_info().currsize == 0
        assert s.executor_pool_size() == 0
        assert sum(i.currsize for i in s.plan_caches.cache_info()) == 0

    def test_close_leaves_shared_fft_caches_alone(self):
        """Closing a cache-sharing session must not cold-start everyone
        else: the process-wide FFT plan set survives."""
        shared = default_plan_caches()
        keeper = api.Session()
        keeper.plan_caches.fft(64, np.complex64)
        before = sum(i.currsize for i in shared.cache_info())
        assert before > 0
        with api.Session() as transient:
            transient.plan(PROB_1D, "D")
        assert sum(i.currsize for i in shared.cache_info()) >= before
        keeper.close()

    def test_executor_pool_is_lru_bounded(self, rng):
        from repro.api import session as session_mod

        s = api.Session()
        x = (rng.standard_normal((1, 4, 32))
             + 1j * rng.standard_normal((1, 4, 32))).astype(np.complex64)
        cap = session_mod.EXECUTOR_POOL_SIZE
        for _ in range(cap + 10):  # transient weights: fresh id each time
            w = ((rng.standard_normal((4, 4))
                  + 1j * rng.standard_normal((4, 4))) / 4
                 ).astype(np.complex64)
            s.infer((w, 8), x)
        assert s.executor_pool_size() == cap
        s.close()

    def test_plans_outlive_their_session(self):
        s = api.Session()
        p = s.plan(PROB_1D, FusionStage.FUSED_ALL)
        s.close()
        # baseline/speedup fall back to the default-session facade.
        assert p.baseline().stage is FusionStage.PYTORCH
        assert p.speedup_vs_baseline() > 0
        w = np.eye(64, dtype=np.complex64)
        assert p.compile_executor(w) is not None

    def test_close_clears_and_refreshes_default(self):
        s = api.default_session()
        s.plan(PROB_1D, "D")
        s.close()
        # A closed default session is replaced lazily.
        s2 = api.default_session()
        assert s2 is not s
        assert s2.plan(PROB_1D, "D").stage is FusionStage.FUSED_ALL


class TestBackendIsolation:
    """Satellite: interleaved sessions with different backends never
    share plans or workspaces."""

    def test_plan_objects_distinct_across_backends(self):
        s_np = api.Session(backend="numpy")
        s_auto = api.Session()
        for n in (64, 128):
            p_np = s_np.plan_caches.fft(n, np.complex64)
            p_auto = s_auto.plan_caches.fft(n, np.complex64)
            assert p_np is not p_auto
            assert p_np.backend == "numpy"
        r_np = s_np.plan_caches.rfft(128, np.float32)
        r_auto = s_auto.plan_caches.rfft(128, np.float32)
        assert r_np is not r_auto
        # R2C sub-plans stay inside their own cache set.
        assert r_np._sub is s_np.plan_caches.fft(64, np.complex64)
        assert r_np._sub is not s_auto.plan_caches.fft(64, np.complex64)
        s_np.close(), s_auto.close()

    def test_interleaved_backends_bit_identical(self, rng):
        w = _weight(rng)
        reqs = _requests(rng, w, n_requests=12)
        s_np = api.Session(backend="numpy")
        s_auto = api.Session()
        out_np, out_auto = [], []
        for model, x in reqs:  # strictly interleaved execution
            out_np.append(s_np.infer(model, x))
            out_auto.append(s_auto.infer(model, x))
        assert all(np.array_equal(a, b) for a, b in zip(out_np, out_auto))
        s_np.close(), s_auto.close()

    def test_interleaved_backends_threaded(self, rng):
        """Two sessions with different backends serving concurrently
        produce the same bits as serial execution."""
        w = _weight(rng)
        reqs = _requests(rng, w, n_requests=16)
        serial = [api.Session(backend="numpy").infer(m, x)
                  for m, x in reqs]
        results: dict[str, list] = {}
        sessions = {
            "numpy": api.Session(backend="numpy"),
            "auto": api.Session(private_caches=True),
        }

        def serve(name):
            s = sessions[name]
            results[name] = s.infer_many(reqs, max_batch=4, workers=2)

        threads = [threading.Thread(target=serve, args=(n,))
                   for n in sessions]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for name in sessions:
            assert all(
                np.array_equal(a, b)
                for a, b in zip(serial, results[name])
            ), name
            sessions[name].close()


class TestInference:
    def test_infer_matches_spectral_conv(self, rng):
        w = _weight(rng)
        x = (rng.standard_normal((3, 8, 128))
             + 1j * rng.standard_normal((3, 8, 128))).astype(np.complex64)
        s = api.Session()
        got = s.infer((w, 32), x)
        ref = api.spectral_conv(x, w, 32, engine="turbo")
        assert np.array_equal(got, ref)
        s.close()

    def test_executor_pool_reuse(self, rng):
        w = _weight(rng)
        s = api.Session()
        e1 = s.executor(w, 32)
        e2 = s.executor(w, 32)
        assert e1 is e2
        assert isinstance(e1, CompiledSpectralConv1D)
        assert s.executor_pool_size() == 1
        # Different modes (or the symmetric flag) -> a second executor.
        s.executor(w, 16)
        s.executor(w, 32, symmetric=True)
        assert s.executor_pool_size() == 3
        s.close()

    def test_infer_many_bit_identical_to_serial(self, rng):
        w = _weight(rng)
        reqs = _requests(rng, w)
        s = api.Session()
        serial = [s.infer(m, x) for m, x in reqs]
        for max_batch in (1, 4, 7, 64):
            batched = s.infer_many(reqs, max_batch=max_batch)
            assert all(
                np.array_equal(a, b) for a, b in zip(serial, batched)
            ), f"max_batch={max_batch}"
        s.close()

    def test_infer_many_threaded_stress(self, rng):
        """Satellite: threaded infer_many == serial, bit-for-bit, on a
        mixed-geometry mixed-model stream."""
        w1, w2 = _weight(rng), _weight(rng)
        reqs = _requests(rng, w1, n_requests=40) + _requests(
            rng, w2, n_requests=40, geometries=((64, 16), (512, 64))
        )
        s = api.Session()
        serial = [s.infer(m, x) for m, x in reqs]
        for workers in (2, 4, 8):
            got = s.infer_many(reqs, max_batch=5, workers=workers)
            assert all(
                np.array_equal(a, b) for a, b in zip(serial, got)
            ), f"workers={workers}"
        s.close()

    def test_infer_many_respects_max_batch(self, rng):
        w = _weight(rng)
        reqs = _requests(rng, w, n_requests=20,
                         geometries=((128, 32),))  # one geometry
        s = api.Session()
        s.infer_many(reqs, max_batch=8)
        stats = s.stats()
        geo = stats["per_geometry"]["8x128"]
        assert geo["requests"] == 20
        assert geo["batches"] == 3  # ceil(20 / 8)
        s.close()

    def test_infer_many_rejects_bad_max_batch(self, rng):
        s = api.Session()
        with pytest.raises(ValueError, match="max_batch"):
            s.infer_many([], max_batch=0)
        s.close()

    def test_infer_nn_module_under_session(self, rng):
        """A repro.nn model serves through the session (activation
        scope) and micro-batches bit-identically."""
        model = FNO1d(2, 1, width=8, modes=4, depth=2, per_mode=False)
        xs = [rng.standard_normal((2, 2, 32)) for _ in range(6)]
        reqs = [(model, x) for x in xs]
        s = api.Session()
        serial = [s.infer(model, x) for model, x in reqs]
        batched = s.infer_many(reqs, max_batch=3)
        assert all(np.array_equal(a, b) for a, b in zip(serial, batched))
        # and matches the bare forward pass
        assert np.array_equal(serial[0], model(xs[0]))
        s.close()

    def test_infer_nn_module_threaded_serialises(self, rng):
        """Stateful nn models serialise under workers > 1 — concurrent
        forwards on one module would corrupt its cached state."""
        model = FNO1d(2, 1, width=8, modes=4, depth=1, per_mode=False)
        reqs = [(model, rng.standard_normal((1, 2, 32)))
                for _ in range(12)]
        s = api.Session()
        serial = [s.infer(m, x) for m, x in reqs]
        threaded = s.infer_many(reqs, max_batch=2, workers=4)
        assert all(np.array_equal(a, b) for a, b in zip(serial, threaded))
        s.close()

    def test_unsupported_model_rejected(self):
        s = api.Session()
        with pytest.raises(TypeError, match="cannot serve model"):
            s.infer(object(), np.zeros((1, 2, 16)))
        s.close()

    def test_worker_error_propagates(self, rng):
        s = api.Session()
        bad = [((None,), np.zeros((1, 2, 16)))] * 4  # 1-tuple: not a model
        with pytest.raises(TypeError):
            s.infer_many(bad, max_batch=1, workers=2)
        s.close()


class TestDtypePolicy:
    def test_float64_policy_promotes(self, rng):
        w = _weight(rng)
        x = (rng.standard_normal((2, 8, 64))
             + 1j * rng.standard_normal((2, 8, 64))).astype(np.complex64)
        s = api.Session(dtype_policy="float64")
        got = s.infer((w, 16), x)
        ref = api.spectral_conv(x.astype(np.complex128), w, 16,
                                engine="turbo")
        assert got.dtype == np.complex128
        assert np.array_equal(got, ref)
        s.close()

    def test_float32_policy_demotes_real_input(self, rng):
        w = _weight(rng)
        x = rng.standard_normal((2, 8, 64))  # float64 request
        s = api.Session(dtype_policy="float32")
        got = s.infer((w, 16), x)
        ref = api.spectral_conv(x.astype(np.float32), w, 16, engine="turbo")
        assert np.array_equal(got, ref)
        s.close()

    def test_preserve_policy_is_default(self, rng):
        s = api.Session()
        assert s.dtype_policy == "preserve"
        s.close()


class TestWarmupAndStats:
    def test_warmup_precompiles_fft_plans(self):
        s = api.Session(private_caches=True)
        report = s.warmup([PROB_1D, PROB_2D])
        assert report["problems"] == 2
        assert report["plans"] == 2
        assert report["fft_plans"] > 0
        # A second warmup of the same problems adds nothing.
        again = s.warmup([PROB_1D, PROB_2D])
        assert again["fft_plans"] == 0
        s.close()

    def test_warmup_makes_first_infer_hit_caches(self, rng):
        w = _weight(rng, k=64)
        prob = FNO1DProblem(batch=4, hidden=64, dim_x=128, modes=64)
        s = api.Session(private_caches=True)
        s.warmup([prob])
        before = s.plan_caches.cache_info()
        x = (rng.standard_normal((4, 64, 128))
             + 1j * rng.standard_normal((4, 64, 128))).astype(np.complex64)
        s.infer((w, 64), x)
        after = s.plan_caches.cache_info()
        # no new FFT-plan construction: every lookup was a hit
        assert sum(i.currsize for i in after) == sum(
            i.currsize for i in before
        )
        s.close()

    def test_stats_shape(self, rng):
        w = _weight(rng)
        s = api.Session(backend="numpy")
        s.infer_many(_requests(rng, w, n_requests=8), max_batch=4)
        stats = s.stats()
        assert stats["backend"] == "numpy"
        assert stats["requests"] == 8
        assert stats["batches"] == 2  # two geometries, 4 requests each
        assert stats["executor_pool"] == 1
        for geo in stats["per_geometry"].values():
            assert geo["requests_per_s"] is None or geo["requests_per_s"] > 0
        import json
        json.dumps(stats)  # JSON-ready
        s.close()


class TestThreadedStatsConsistency:
    """Satellite: per-geometry serving counters and autotune hit/miss
    counts stay consistent under threaded ``infer_many`` stress.

    Every pooled-executor micro-batch resolves its tiles through the
    session tuner exactly once, so across any interleaving of worker
    threads the invariants are: ``requests`` equals the number of
    requests served, ``hits + misses`` equals the number of micro-batch
    jobs, and ``misses`` equals the number of distinct tune keys
    (geometries) — a torn counter or a double-tune breaks one of them.
    """

    def test_threaded_infer_many_stress(self, rng, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "t.json"))
        w = _weight(rng)
        geometries = ((64, 16), (32, 8))
        s = api.Session(private_caches=True, autotune=True)
        reqs = _requests(rng, w, n_requests=24, batch=2,
                         geometries=geometries)
        serial = s.infer_many(reqs, max_batch=4)  # also pre-tunes
        threads = 4
        rounds = 3
        results: dict[int, list] = {}
        errors: list[BaseException] = []

        def worker(idx: int) -> None:
            try:
                out = []
                for _ in range(rounds):
                    out.append(s.infer_many(reqs, max_batch=4, workers=2))
                results[idx] = out
            except BaseException as exc:  # pragma: no cover - fail fast
                errors.append(exc)

        pool = [threading.Thread(target=worker, args=(i,))
                for i in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert not errors
        for out_rounds in results.values():
            for outs in out_rounds:
                assert all(
                    np.array_equal(a, b) for a, b in zip(outs, serial)
                )
        stats = s.stats()
        total_requests = len(reqs) * (1 + threads * rounds)
        assert stats["requests"] == total_requests
        per_geo_requests = sum(
            g["requests"] for g in stats["per_geometry"].values()
        )
        assert per_geo_requests == total_requests
        tune = stats["autotune"]
        # one tiles_for resolution per micro-batch job, exactly
        assert tune["hits"] + tune["misses"] == stats["batches"]
        # one timed search per distinct geometry, no double-tunes
        assert tune["misses"] == len(geometries)
        assert tune["entries"] == len(geometries)
        s.close()


class TestReproWorkersOverride:
    """Satellite: REPRO_WORKERS pins sweep parallelism."""

    def test_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3
        monkeypatch.setenv("REPRO_WORKERS", " 12 ")
        assert default_workers() == 12

    def test_unset_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_workers() >= 1

    @pytest.mark.parametrize("bad", ["zero", "", "1.5", "-2", "0"])
    def test_invalid_values_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_WORKERS", bad)
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            default_workers()


class TestRunnerSessionBinding:
    def test_runner_plans_through_session(self):
        s = api.Session()
        runner = api.Runner(session=s)
        p = runner.plan(PROB_1D, "D")
        assert p is s.plan(PROB_1D, "D")
        assert runner.config is s.config and runner.device is s.device
        s.close()

    def test_for_session_constructor(self):
        s = api.Session(device="h100")
        runner = api.Runner.for_session(s)
        assert runner.device.name.startswith("H100")
        assert runner.plan(PROB_1D, "D") is s.plan(PROB_1D, "D")
        s.close()

    def test_sweep_values_match_unbound_runner(self):
        s = api.Session()
        probs = [FNO1DProblem(batch=b, hidden=32, dim_x=128, modes=64)
                 for b in (16, 64)]
        bound = api.Runner(session=s).sweep(probs, ("A", "D"))
        unbound = api.Runner().sweep(probs, ("A", "D"))
        assert bound == unbound
        s.close()


class TestTrainerSessionInjection:
    def test_training_under_session_matches_unbound(self, rng):
        from repro.nn.optim import Adam
        from repro.nn.trainer import evaluate, train

        x = rng.standard_normal((8, 2, 32))
        y = rng.standard_normal((8, 1, 32))

        def run(session):
            model = FNO1d(2, 1, width=8, modes=4, depth=1, per_mode=False,
                          seed=7)
            opt = Adam(model.parameters(), lr=1e-3)
            hist = train(model, opt, x, y, epochs=2, batch_size=4,
                         session=session)
            return hist.train_loss, evaluate(model, x, y, session=session)

        s = api.Session(backend="numpy", private_caches=True)
        bound_losses, bound_eval = run(s)
        # the session's private caches actually served the training FFTs
        assert sum(i.currsize for i in s.plan_caches.cache_info()) > 0
        s.close()
        unbound_losses, unbound_eval = run(None)
        assert bound_losses == unbound_losses
        assert bound_eval == unbound_eval

    def test_activate_scopes_plan_lookups(self):
        s = api.Session(backend="numpy")
        with s.activate():
            assert current_plan_caches() is s.plan_caches
        assert current_plan_caches() is default_plan_caches()
        s.close()
