"""Tests for the butterfly op census — Figure 5's numbers are exact."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fft.opcount import butterfly_ops, census, fft_flops, pruned_fraction


class TestFigure5:
    """The paper's worked 4-point example, verbatim."""

    def test_full_4pt_has_8_ops(self):
        assert butterfly_ops(4) == 8

    def test_25_percent_truncation_is_37_5_percent(self):
        c = census(4, keep_out=1)
        assert c.ops == 3
        assert c.fraction == pytest.approx(0.375)

    def test_50_percent_truncation_is_75_percent(self):
        c = census(4, keep_out=2)
        assert c.ops == 6
        assert c.fraction == pytest.approx(0.75)


class TestTotals:
    @pytest.mark.parametrize("n,expected", [(1, 0), (2, 2), (4, 8), (8, 24),
                                            (128, 896), (256, 2048)])
    def test_butterfly_ops_formula(self, n, expected):
        assert butterfly_ops(n) == expected

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            butterfly_ops(12)

    def test_unpruned_census_is_total(self):
        c = census(128)
        assert c.ops == butterfly_ops(128)
        assert c.fraction == 1.0
        assert c.trivial_ops == 0


class TestTruncationCensus:
    def test_more_keep_more_ops(self):
        ops = [census(128, keep_out=k).ops for k in (1, 2, 4, 8, 16, 32, 64, 128)]
        assert ops == sorted(ops)
        assert ops[-1] == butterfly_ops(128)

    def test_keep_one_output_needs_chain_of_adds(self):
        # X[0] needs one op at each stage over a halving tree: n-1 adds.
        c = census(64, keep_out=1)
        assert c.ops == 63

    def test_per_stage_sums_to_ops(self):
        c = census(256, keep_out=64)
        assert sum(c.per_stage) == c.ops
        assert len(c.per_stage) == 8  # log2(256)

    @pytest.mark.parametrize("keep", [0, 129])
    def test_bad_keep_rejected(self, keep):
        with pytest.raises(ValueError):
            census(128, keep_out=keep)


class TestPaddingCensus:
    def test_half_live_input_makes_first_stage_trivial(self):
        # Stockham stage 1 pairs (j, j + n/2); with only the first half
        # live, every stage-1 butterfly has exactly one live input.
        c = census(128, nonzero_in=64)
        assert c.trivial_ops == 128
        assert c.full_ops == butterfly_ops(128) - 128

    def test_single_live_input_everything_trivial(self):
        # An impulse never needs a true addition, only copies/scales.
        c = census(64, nonzero_in=1)
        assert c.full_ops == 0
        assert c.trivial_ops > 0

    def test_weighted_fraction_discounts_trivial(self):
        c = census(128, nonzero_in=64)
        assert c.weighted_fraction(0.0) < c.weighted_fraction(0.5) < 1.0
        assert c.weighted_fraction(1.0) == pytest.approx(c.fraction)

    def test_weighted_fraction_validation(self):
        with pytest.raises(ValueError):
            census(8).weighted_fraction(1.5)


class TestCombined:
    def test_truncation_and_padding_compose(self):
        both = census(128, keep_out=32, nonzero_in=32)
        trunc = census(128, keep_out=32)
        pad = census(128, nonzero_in=32)
        assert both.ops <= min(trunc.ops, pad.ops)

    def test_pruned_fraction_wrapper(self):
        assert pruned_fraction(4, keep_out=1) == pytest.approx(0.375)
        assert pruned_fraction(128) == 1.0


class TestFlops:
    def test_standard_convention(self):
        assert fft_flops(128, 10) == pytest.approx(5 * 128 * 7 * 10)

    def test_fraction_scales(self):
        assert fft_flops(128, 1, 0.5) == pytest.approx(fft_flops(128, 1) / 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            fft_flops(100)
        with pytest.raises(ValueError):
            fft_flops(128, 1, 1.5)


@given(st.integers(1, 8), st.integers(0, 8))
@settings(max_examples=40, deadline=None)
def test_census_fraction_bounds(log_n, log_keep):
    n = 2**log_n
    keep = min(2**log_keep, n)
    c = census(n, keep_out=keep)
    assert 0.0 < c.fraction <= 1.0
    assert c.full_ops + c.trivial_ops == c.ops
