"""The paper's headline claims, asserted against the reproduction.

Each test names the claim and where the paper makes it.  Exact-arithmetic
claims (Figure 5 ratios, Figure 7/8 bank utilizations) are asserted
exactly; performance claims from the execution model are asserted as
qualitative *shape* criteria with generous bands, per the reproduction
ground rules (our substrate is an analytic model, not the authors' A100).
"""

import numpy as np
import pytest

from repro.analysis import figures, summarize
from repro.core.stages import FusionStage
from repro.fft.opcount import census


class TestExactClaims:
    def test_fig5_pruning_ratios(self):
        """§3.3: 'When truncation ratio is 25 % ... 37.5 % of the original
        computation.  At 50 % truncation ... 75 % of the original.'"""
        assert census(4, keep_out=1).fraction == pytest.approx(0.375)
        assert census(4, keep_out=2).fraction == pytest.approx(0.75)

    def test_fig7_bank_utilization(self):
        """§4.1: VkFFT-style forwarding achieves 'only 25 % warp-level bank
        utilization'; naive butterfly write-back 6.25 %; TurboFNO 100 %."""
        f7 = figures.fig07()
        assert f7["forward_vkfft"] == pytest.approx(0.25)
        assert f7["writeback_16pt_naive"] == pytest.approx(0.0625)
        assert f7["forward_turbofno"] == 1.0
        assert f7["writeback_16pt_swizzled"] == 1.0
        assert f7["writeback_8pt_swizzled"] == 1.0

    def test_fig8_bank_utilization(self):
        """§4.2 / conclusion: swizzling improves the epilogue 'from 25 % to
        100 %'."""
        f8 = figures.fig08()
        assert f8["epilogue_naive"] == pytest.approx(0.25)
        assert f8["epilogue_swizzled"] == 1.0

    def test_kernel_launch_reduction(self):
        """Fig. 1: five-stage pipeline collapses to one kernel."""
        r = figures.fig01c()
        assert r.pytorch.launch_count == 5
        assert r.turbo.launch_count == 1


class TestShapeClaims1D:
    @pytest.fixture(scope="class")
    def fig13_panels(self):
        return figures.fig13()

    def test_fft_opt_average_around_50(self, fig13_panels):
        """§5.1 A.1: 'an average speedup of 50 %' for the FFT-optimised
        workflow (we accept 25-75)."""
        stats = summarize([fig13_panels[0]], FusionStage.FFT_OPT)
        assert 25.0 < stats["mean"] < 75.0

    def test_fft_opt_larger_at_small_k(self, fig13_panels):
        """§5.1 A.1: 70-100 % speedup at K = 16-32, stabilising near 50 %."""
        panel = fig13_panels[0]
        small_k = panel.series[FusionStage.FFT_OPT][0]
        large_k = panel.series[FusionStage.FFT_OPT][-1]
        assert small_k > large_k

    def test_fusion_gain_declines_with_k(self, fig13_panels):
        """§5.1 A.2: 'increasing K from 32 to 128 leads to a gradual
        decline in the benefits of kernel fusion ... may even degrade'."""
        panel = fig13_panels[0]
        gain = [
            b - a
            for a, b in zip(
                panel.series[FusionStage.FFT_OPT],
                panel.series[FusionStage.FUSED_FFT_GEMM],
            )
        ]
        assert gain[0] > gain[-1]
        assert gain[-1] < 0  # degradation at the largest K

    def test_full_fusion_beats_partial_at_moderate_k(self, fig13_panels):
        """§5.1 A.4: the fully fused kernel adds ~10-20 % over the partial
        fusions in its favourable regime (K <= 64)."""
        panel = fig13_panels[0]
        for i, k in enumerate(panel.x):
            if k > 64:
                continue
            d = panel.series[FusionStage.FUSED_ALL][i]
            a = panel.series[FusionStage.FFT_OPT][i]
            assert d > a

    def test_speedup_grows_with_batch(self, fig13_panels):
        """§5.1 A.1: 'the speedup ratio increases with BS' (as a trend:
        the large-BS half of each panel beats the small-BS half)."""
        for panel in fig13_panels[1:]:
            series = panel.series[FusionStage.FUSED_ALL]
            # L2-crossover wiggles are allowed; the endpoint should not be
            # materially below the start.
            assert series[-1] > series[0] - 5.0
        # At least one panel must show a clear net rise.
        rises = [
            p.series[FusionStage.FUSED_ALL][-1] - p.series[FusionStage.FUSED_ALL][0]
            for p in fig13_panels[1:]
        ]
        assert max(rises) > 20.0

    def test_max_speedup_band(self):
        """§5.1 A.5: max speedup up to 250 % over PyTorch (assert > 100)."""
        panels = figures.fig14()
        best = max(p.max for p in panels)
        assert 100.0 < best < 400.0

    def test_average_speedup_band(self):
        """§5.1 A.5: 'average speedup of 44 %' (assert 20-70)."""
        panels = figures.fig14()
        mean = float(np.mean([p.mean for p in panels]))
        assert 20.0 < mean < 70.0

    def test_blue_region_confined_to_small_m(self):
        """§5.1 A.5: slowdowns only at small batch x large K."""
        for hm in figures.fig14():
            neg = hm.values < 0
            # No losses in the big-M half of the grid.
            big_m = np.asarray(hm.rows) >= 15
            assert not neg[big_m, :].any()
            # No losses at the smallest K column.
            assert not neg[:, 0].any()


class TestShapeClaims2D:
    @pytest.fixture(scope="class")
    def fig18_panels(self):
        return figures.fig18()

    def test_2d_average_above_50(self, fig18_panels):
        """§5.2 B.1: 'average speedup above 50 %'."""
        stats = summarize(fig18_panels, FusionStage.FFT_OPT)
        assert stats["mean"] > 50.0

    def test_2d_fusion_increment_small(self, fig18_panels):
        """§5.2 B.2: fused FFT-CGEMM adds only ~1-2 % in 2-D (we accept
        anything clearly smaller than the 1-D increment, < 25 points)."""
        panel = fig18_panels[0]
        gains = [
            b - a
            for a, b in zip(
                panel.series[FusionStage.FFT_OPT],
                panel.series[FusionStage.FUSED_FFT_GEMM],
            )
        ]
        assert max(gains) < 25.0

    def test_2d_full_fusion_consistent_improvement(self, fig18_panels):
        """§5.2 B.4: full fusion outperforms partial at K <= 96."""
        panel = fig18_panels[0]
        for i, k in enumerate(panel.x):
            if k > 96:
                continue
            assert (
                panel.series[FusionStage.FUSED_ALL][i]
                >= panel.series[FusionStage.FUSED_FFT_GEMM][i] - 1e-9
            )

    def test_2d_heatmap_bands(self):
        """§5.2 B.5: 'average 67 %, maximum 150 %' (assert 40-160 mean)."""
        panels = figures.fig19()
        mean = float(np.mean([p.mean for p in panels]))
        best = max(p.max for p in panels)
        assert 40.0 < mean < 170.0
        assert best > 100.0

    def test_2d_more_stable_than_1d(self):
        """§5.2 B.1: 2-D speedups are 'more stable and higher' at small
        problem sizes than 1-D."""
        one_d = figures.fig14()
        two_d = figures.fig19()
        neg_1d = float(np.mean([p.negative_fraction() for p in one_d]))
        neg_2d = float(np.mean([p.negative_fraction() for p in two_d]))
        assert neg_2d < neg_1d
