"""Differential fuzz harness: autotune may never change a single bit.

The tiling autotune's correctness claim — every legal ``(signal_tile,
k_tb)`` pair moves operands, never arithmetic — is enforced here by
differential testing: randomized geometries, dtypes, memory layouts and
batch shapes run through (a) the default-tile executor, (b) a
tiled-variant executor, and (c) the frozen :mod:`repro.core.legacy`
oracle, on both the C-kernel and pure-NumPy substrates, asserting
byte-for-byte equality.  Edge tiles are pinned explicitly: batches
smaller than the signal tile, channel counts smaller than the staging
``k_tb``, ragged final panels, and the degenerate one-everything
geometry.

The randomized grid is deterministic (seeded) so failures reproduce.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import legacy
from repro.core.autotune import Tiles, TuneStore, Tuner
from repro.core.compiled import (
    CompiledSpectralConv1D,
    CompiledSpectralConv2D,
)
from repro.fft._ckernels import kernels_available

BACKENDS = ["ckernels", "numpy"] if kernels_available() else ["numpy"]


@pytest.fixture(params=BACKENDS)
def backend(request, monkeypatch):
    if request.param == "numpy":
        from repro.fft import _ckernels, compiled

        monkeypatch.setitem(_ckernels._state, "kernels", None)
        monkeypatch.setitem(_ckernels._state, "tried", True)
        compiled.clear_fft_plan_cache()
    return request.param


def _bit_equal(a, b):
    if a.dtype != b.dtype or a.shape != b.shape:
        return False
    av = np.ascontiguousarray(a)
    bv = np.ascontiguousarray(b)
    if a.dtype.kind == "c":
        av, bv = av.view(a.real.dtype), bv.view(b.real.dtype)
    return np.array_equal(av, bv)


def _weight(rng, c_in, c_out, dtype):
    return (rng.standard_normal((c_in, c_out))
            + 1j * rng.standard_normal((c_in, c_out))).astype(dtype)


def _signal(rng, shape, dtype, layout):
    """A random input in one of several memory layouts."""
    x = rng.standard_normal(shape)
    if np.dtype(dtype).kind == "c":
        x = x + 1j * rng.standard_normal(shape)
    x = x.astype(dtype)
    if layout == "contiguous":
        return x
    if layout == "strided":  # every other row of a taller batch
        big = np.repeat(x, 2, axis=0)
        big[::2] = x
        return big[::2]
    # "transposed": same values, non-contiguous axis order underneath
    return np.moveaxis(np.ascontiguousarray(np.moveaxis(x, 0, -1)), -1, 0)


def _random_case_1d(rng):
    dim_x = int(rng.choice([4, 8, 16, 32, 64, 128]))
    p = int(rng.choice([1, 2, 4]))
    while dim_x // p < 1 or dim_x % p:
        p = 1
    modes = dim_x // p
    batch = int(rng.integers(1, 41))
    c_in = int(rng.integers(1, 21))
    c_out = int(rng.integers(1, 13))
    st = int(rng.integers(1, 65))
    ktb = 8 * int(rng.integers(1, 6))
    dtype = rng.choice([np.float32, np.float64, np.complex64])
    layout = rng.choice(["contiguous", "strided", "transposed"])
    return batch, c_in, c_out, dim_x, modes, Tiles(st, ktb), dtype, layout


class TestFuzzFused1D:
    @pytest.mark.parametrize("trial", range(14))
    def test_randomized_tiles_match_default_and_oracle(self, backend,
                                                       trial):
        rng = np.random.default_rng(1000 + trial)
        (batch, c_in, c_out, dim_x, modes, tiles, dtype,
         layout) = _random_case_1d(rng)
        wdtype = np.complex128 if dtype == np.float64 else np.complex64
        w = _weight(rng, c_in, c_out, wdtype)
        x = _signal(rng, (batch, c_in, dim_x), dtype, layout)
        oracle = legacy.fused_fft_gemm_ifft_1d(x, w, modes)
        default = CompiledSpectralConv1D(w, modes)(x)
        tiled = CompiledSpectralConv1D(w, modes, tiles=tiles)(x)
        assert _bit_equal(default, oracle)
        assert _bit_equal(tiled, default), (
            f"tiles {tuple(tiles)} changed bits for "
            f"B={batch} C={c_in}x{c_out} X={dim_x} m={modes} "
            f"{np.dtype(dtype).name} {layout} [{backend}]"
        )

    @pytest.mark.parametrize("batch,c_in,tiles", [
        (3, 9, Tiles(16, 8)),     # batch < signal_tile
        (2, 5, Tiles(64, 8)),     # batch << signal_tile, ragged panel
        (40, 3, Tiles(16, 8)),    # c_in < k_tb: one ragged panel only
        (7, 6, Tiles(32, 16)),    # c_in < staging k_tb
        (1, 1, Tiles(1, 8)),      # the degenerate one-everything case
        (33, 24, Tiles(8, 24)),   # c_in == staging block, 3 sub-panels
        (16, 20, Tiles(5, 16)),   # ragged tail panel after full blocks
    ])
    def test_edge_tiles(self, backend, batch, c_in, tiles):
        rng = np.random.default_rng(batch * 100 + c_in)
        w = _weight(rng, c_in, 4, np.complex64)
        x = _signal(rng, (batch, c_in, 32), np.float32, "contiguous")
        oracle = legacy.fused_fft_gemm_ifft_1d(x, w, 16)
        tiled = CompiledSpectralConv1D(w, 16, tiles=tiles)(x)
        assert _bit_equal(tiled, oracle)

    def test_interleaved_tiled_and_default_executors_share_plans(
            self, backend):
        """Distinct tilings of one weight interleave through the shared
        plan caches without cross-talk."""
        rng = np.random.default_rng(7)
        w = _weight(rng, 10, 5, np.complex64)
        convs = [CompiledSpectralConv1D(w, 16, tiles=t)
                 for t in [(16, 8), (4, 16), (64, 40)]]
        for trial in range(3):
            x = _signal(rng, (11, 10, 32), np.float32, "contiguous")
            ref = legacy.fused_fft_gemm_ifft_1d(x, w, 16)
            for conv in convs:
                assert _bit_equal(conv(x), ref)


class TestFuzzFused2D:
    @pytest.mark.parametrize("trial", range(8))
    def test_randomized_tiles_match_default_and_oracle(self, backend,
                                                       trial):
        rng = np.random.default_rng(2000 + trial)
        dim_x = int(rng.choice([4, 8, 16, 32]))
        dim_y = int(rng.choice([8, 16, 32, 64]))
        mx = dim_x // int(rng.choice([1, 2]))
        my = dim_y // int(rng.choice([1, 2, 4]))
        batch = int(rng.integers(1, 9))
        c_in = int(rng.integers(1, 17))
        c_out = int(rng.integers(1, 9))
        tiles = Tiles(int(rng.integers(1, 65)), 8 * int(rng.integers(1, 5)))
        dtype = rng.choice([np.float32, np.complex64])
        layout = rng.choice(["contiguous", "strided"])
        w = _weight(rng, c_in, c_out, np.complex64)
        x = _signal(rng, (batch, c_in, dim_x, dim_y), dtype, layout)
        oracle = legacy.fused_fft_gemm_ifft_2d(x, w, mx, my)
        tiled = CompiledSpectralConv2D(w, mx, my, tiles=tiles)(x)
        assert _bit_equal(tiled, oracle), (
            f"tiles {tuple(tiles)} changed bits for B={batch} "
            f"C={c_in}x{c_out} grid={dim_x}x{dim_y} m={mx}x{my} "
            f"{np.dtype(dtype).name} {layout} [{backend}]"
        )


def _sym_oracle_1d(x, w, modes):
    """The symmetric filter via numpy.fft in double precision."""
    n = x.shape[-1]
    xk = np.fft.rfft(x.astype(np.float64), axis=-1)[..., :modes]
    yk = np.einsum("bim,io->bom", xk, w.astype(np.complex128))
    out_ft = np.zeros((x.shape[0], w.shape[1], n // 2 + 1), dtype=complex)
    out_ft[..., :modes] = yk
    return np.fft.irfft(out_ft, n=n, axis=-1)


def _sym_oracle_2d(x, w, mx, my):
    b, _, dim_x, dim_y = x.shape
    xk = np.fft.rfft(x.astype(np.float64), axis=3)[..., :my]
    xk = np.fft.fft(xk, axis=2)[:, :, :mx]
    yk = np.einsum("bimn,io->bomn", xk, w.astype(np.complex128))
    out_ft = np.zeros((b, w.shape[1], dim_x, dim_y // 2 + 1), dtype=complex)
    out_ft[:, :, :mx, :my] = yk
    return np.fft.irfft(np.fft.ifft(out_ft, axis=2), n=dim_y, axis=3)


#: oracle tolerance per working precision for the symmetric fuzz
_SYM_ATOL = {np.dtype(np.float32): 1e-3, np.dtype(np.float64): 1e-9}


class TestFuzzSymmetric:
    """Symmetric executors fuzz the *pruned* R2C/C2R plan family: modes
    draws cover the whole legal range [1, X/2] — non-powers of two and
    the decomposition/slice/pad strategy boundaries included — and every
    trial is checked against the numpy.fft oracle on top of the tiled
    byte-identity."""

    @pytest.mark.parametrize("trial", range(14))
    def test_randomized_batch_tiles_match_untiled_1d(self, backend, trial):
        rng = np.random.default_rng(3000 + trial)
        dim_x = int(rng.choice([8, 16, 32, 64, 128]))
        # any legal truncation, not just power-of-two divisors: odd
        # parts, Nyquist-adjacent parts and the degenerate full prune
        modes = int(rng.integers(1, dim_x // 2 + 1))
        batch = int(rng.integers(1, 33))
        c_in = int(rng.integers(1, 13))
        c_out = int(rng.integers(1, 9))
        tile = int(rng.integers(0, 41))
        dtype = rng.choice([np.float32, np.float64])
        wdtype = np.complex128 if dtype == np.float64 else np.complex64
        w = _weight(rng, c_in, c_out, wdtype)
        x = _signal(rng, (batch, c_in, dim_x), dtype, "contiguous")
        ref = CompiledSpectralConv1D(w, modes, symmetric=True)(x)
        np.testing.assert_allclose(
            ref, _sym_oracle_1d(x, w, modes),
            atol=_SYM_ATOL[np.dtype(dtype)] * dim_x,
            err_msg=f"oracle mismatch for B={batch} C={c_in} X={dim_x} "
                    f"m={modes} [{backend}]",
        )
        tiled = CompiledSpectralConv1D(
            w, modes, symmetric=True, tiles=(tile, 8)
        )(x)
        assert _bit_equal(tiled, ref), (
            f"batch tile {tile} changed bits for B={batch} C={c_in} "
            f"X={dim_x} m={modes} [{backend}]"
        )

    @pytest.mark.parametrize("trial", range(8))
    def test_randomized_batch_tiles_match_untiled_2d(self, backend, trial):
        rng = np.random.default_rng(4000 + trial)
        dim_x, dim_y = int(rng.choice([8, 16])), int(rng.choice([16, 32, 64]))
        mx = int(rng.integers(1, dim_x + 1))
        my = int(rng.integers(1, dim_y // 2 + 1))
        batch = int(rng.integers(1, 17))
        c_in = int(rng.integers(1, 9))
        tile = int(rng.integers(0, 21))
        w = _weight(rng, c_in, 5, np.complex64)
        x = _signal(rng, (batch, c_in, dim_x, dim_y), np.float32,
                    "contiguous")
        ref = CompiledSpectralConv2D(w, mx, my, symmetric=True)(x)
        np.testing.assert_allclose(
            ref, _sym_oracle_2d(x, w, mx, my),
            atol=_SYM_ATOL[np.dtype(np.float32)] * dim_y,
            err_msg=f"oracle mismatch for B={batch} C={c_in} "
                    f"grid={dim_x}x{dim_y} m={mx}x{my} [{backend}]",
        )
        tiled = CompiledSpectralConv2D(
            w, mx, my, symmetric=True, tiles=(tile, 8)
        )(x)
        assert _bit_equal(tiled, ref)

    def test_tiled_symmetric_with_precomputed_spectrum(self, backend):
        rng = np.random.default_rng(5)
        w = _weight(rng, 6, 4, np.complex64)
        x = _signal(rng, (9, 6, 32), np.float32, "contiguous")
        xk = np.fft.rfft(x.astype(np.float64), axis=-1)[..., :8].astype(
            np.complex64
        )
        ref = CompiledSpectralConv1D(w, 8, symmetric=True)(x, xk_trunc=xk)
        tiled = CompiledSpectralConv1D(
            w, 8, symmetric=True, tiles=(4, 8)
        )(x, xk_trunc=xk)
        assert _bit_equal(tiled, ref)


class TestFuzzAutotuned:
    """``tiles="auto"`` — the full tuner path — is itself differential:
    whatever winner the timed search picks must be invisible in the
    output bits."""

    @pytest.mark.parametrize("trial", range(4))
    def test_autotuned_executor_bit_identical_1d(self, backend, tmp_path,
                                                 trial):
        rng = np.random.default_rng(6000 + trial)
        c_in = int(rng.integers(1, 10))
        c_out = int(rng.integers(1, 7))
        batch = int(rng.integers(1, 25))
        dim_x = int(rng.choice([8, 16, 32]))
        modes = dim_x // int(rng.choice([1, 2]))
        w = _weight(rng, c_in, c_out, np.complex64)
        x = _signal(rng, (batch, c_in, dim_x), np.float32, "contiguous")
        tuner = Tuner(store=TuneStore(tmp_path / f"t{trial}.json"))
        auto = CompiledSpectralConv1D(w, modes, tiles="auto", tuner=tuner)
        oracle = legacy.fused_fft_gemm_ifft_1d(x, w, modes)
        assert _bit_equal(auto(x), oracle)
        assert _bit_equal(auto(x), oracle)  # memoised winner: same bits
        assert tuner.stats()["misses"] == 1

    def test_autotuned_executor_bit_identical_2d_and_sym(self, backend,
                                                         tmp_path):
        rng = np.random.default_rng(6100)
        w = _weight(rng, 6, 6, np.complex64)
        tuner = Tuner(store=TuneStore(tmp_path / "t2d.json"))
        x2 = _signal(rng, (5, 6, 16, 32), np.float32, "contiguous")
        auto2 = CompiledSpectralConv2D(w, 8, 16, tiles="auto", tuner=tuner)
        assert _bit_equal(
            auto2(x2), legacy.fused_fft_gemm_ifft_2d(x2, w, 8, 16)
        )
        xs = _signal(rng, (12, 6, 32), np.float32, "contiguous")
        autos = CompiledSpectralConv1D(w, 8, symmetric=True, tiles="auto",
                                       tuner=tuner)
        assert _bit_equal(
            autos(xs), CompiledSpectralConv1D(w, 8, symmetric=True)(xs)
        )
