"""Edge-case and failure-injection tests across the stack."""

import numpy as np
import pytest

from repro.core.config import FNO1DProblem, TurboFNOConfig
from repro.core.fused import fused_fft_gemm_ifft_1d
from repro.core.pipeline_model import build_pipeline_1d, turbo_fft_kernel
from repro.core.stages import FusionStage
from repro.fft.plan import FFTPlan
from repro.fft.pruned import truncated_fft
from repro.gpu.device import A100_SPEC, DeviceSpec
from repro.gpu.kernel import kernel_time
from repro.nn import FNO1d
from repro.pde.darcy import solve_darcy


class TestDegenerateShapes:
    def test_single_signal_single_channel(self, rng):
        x = rng.standard_normal((1, 1, 4)) + 0j
        w = np.ones((1, 1), dtype=complex)
        out = fused_fft_gemm_ifft_1d(x, w, 4)
        assert np.allclose(out, x, atol=1e-10)  # identity low-pass

    def test_modes_equal_one(self, rng):
        """Keeping one bin projects onto the mean (DC) component."""
        x = rng.standard_normal((2, 3, 16)) + 0j
        w = np.eye(3, dtype=complex)
        out = fused_fft_gemm_ifft_1d(x, w, 1)
        expected = np.mean(x, axis=-1, keepdims=True) * np.ones_like(x)
        assert np.allclose(out, expected, atol=1e-10)

    def test_length_two_fft_pipeline(self, rng):
        x = rng.standard_normal((1, 2, 2)) + 0j
        w = np.eye(2, dtype=complex)
        out = fused_fft_gemm_ifft_1d(x, w, 2)
        assert np.allclose(out, x, atol=1e-12)

    def test_wide_output_projection(self, rng):
        """C_out >> C_in works (rectangular weights)."""
        x = rng.standard_normal((2, 2, 8)) + 0j
        w = rng.standard_normal((2, 17)) + 0j
        assert fused_fft_gemm_ifft_1d(x, w, 4).shape == (2, 17, 8)


class TestModelEdgeCases:
    def test_one_block_problem(self):
        """The smallest possible grid still times sanely."""
        prob = FNO1DProblem(batch=1, hidden=1, dim_x=64, modes=64)
        for stage in FusionStage.ladder():
            t = build_pipeline_1d(prob, stage).total_time()
            assert np.isfinite(t) and t > 0

    def test_huge_problem_no_overflow(self):
        prob = FNO1DProblem(batch=2**24, hidden=256, dim_x=256, modes=128)
        t = build_pipeline_1d(prob, FusionStage.FUSED_ALL).total_time()
        assert np.isfinite(t)

    def test_tiny_device(self):
        """A one-SM device model still produces ordered results."""
        dev = DeviceSpec(num_sms=1, fp32_tflops=0.1, dram_bandwidth_gbs=10.0)
        prob = FNO1DProblem(batch=64, hidden=16, dim_x=64, modes=32)
        base = build_pipeline_1d(prob, FusionStage.PYTORCH).total_time(dev)
        fused = build_pipeline_1d(prob, FusionStage.FUSED_ALL).total_time(dev)
        assert base > 0 and fused > 0

    def test_kernel_with_zero_work(self):
        plan = FFTPlan(n=4, batch=1, per_thread=2)
        spec = turbo_fft_kernel(plan, TurboFNOConfig(), "tiny")
        t = kernel_time(spec, A100_SPEC)
        # Launch overhead dominates but is present.
        assert t.total >= A100_SPEC.kernel_launch_overhead_s

    def test_modes_equal_dim_disables_truncation_savings(self):
        full = FNO1DProblem(batch=256, hidden=32, dim_x=128, modes=128)
        trunc = FNO1DProblem(batch=256, hidden=32, dim_x=128, modes=64)
        c_full = build_pipeline_1d(full, FusionStage.FFT_OPT).counters()
        c_trunc = build_pipeline_1d(trunc, FusionStage.FFT_OPT).counters()
        assert c_trunc.global_bytes < c_full.global_bytes


class TestNumericalRobustness:
    def test_fused_with_zero_input(self):
        x = np.zeros((2, 4, 16), dtype=complex)
        w = np.ones((4, 4), dtype=complex)
        out = fused_fft_gemm_ifft_1d(x, w, 8)
        assert np.all(out == 0)

    def test_fused_with_large_magnitudes(self, rng):
        x = (rng.standard_normal((2, 4, 32)) * 1e6) + 0j
        w = np.eye(4, dtype=complex) * 1e-6
        out = fused_fft_gemm_ifft_1d(x, w, 16)
        assert np.all(np.isfinite(out))

    def test_truncated_fft_preserves_nan_policy(self):
        """Garbage in, garbage out — but never silently dropped."""
        x = np.full((1, 16), np.nan, dtype=complex)
        out = truncated_fft(x, 4)
        assert np.isnan(out).all()

    def test_fno_rejects_wrong_channel_count(self, rng):
        model = FNO1d(2, 1, width=4, modes=2, depth=1)
        with pytest.raises(ValueError):
            model(rng.standard_normal((1, 3, 16)))

    def test_darcy_near_singular_contrast(self):
        """Extreme coefficient contrast still solves and stays bounded."""
        a = np.ones((16, 16))
        a[4:12, 4:12] = 1e6
        u = solve_darcy(a, f=1.0)
        assert np.all(np.isfinite(u))
        assert np.all(u >= -1e-12)
        # The stiff inclusion carries almost no gradient.
        assert u[8, 8] == pytest.approx(u[8, 9], abs=1e-4)
