"""Tests for the pruned (truncated / zero-padded) transforms.

The defining property of each function is bit-level agreement with its
naive counterpart: ``truncated_fft == fft + slice``, ``zero_padded_fft ==
pad + fft``, ``truncated_ifft == pad + ifft``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fft.pruned import truncated_fft, truncated_ifft, zero_padded_fft
from repro.fft.stockham import fft, ifft


def _random_complex(rng, shape, dtype=np.complex128):
    x = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    return x.astype(dtype)


class TestTruncatedFFT:
    @pytest.mark.parametrize("n,keep", [
        (4, 1), (4, 2), (4, 4),
        (128, 16), (128, 32), (128, 64), (128, 128),
        (256, 64), (256, 128),
    ])
    def test_equals_full_then_slice(self, rng, n, keep):
        x = _random_complex(rng, (3, n))
        assert np.allclose(
            truncated_fft(x, keep), np.fft.fft(x)[:, :keep], atol=1e-9
        )

    def test_axis_handling(self, rng):
        x = _random_complex(rng, (16, 3, 5))
        out = truncated_fft(x, 4, axis=0)
        assert out.shape == (4, 3, 5)
        assert np.allclose(out, np.fft.fft(x, axis=0)[:4], atol=1e-9)

    def test_complex64(self, rng):
        x = _random_complex(rng, (2, 64), np.complex64)
        out = truncated_fft(x, 16)
        assert out.dtype == np.complex64
        assert np.allclose(out, np.fft.fft(x)[:, :16], atol=1e-3)

    @pytest.mark.parametrize("keep", [0, 3, 5, 256])
    def test_bad_keep_rejected(self, rng, keep):
        x = _random_complex(rng, (2, 128))
        with pytest.raises(ValueError):
            truncated_fft(x, keep)


class TestZeroPaddedFFT:
    @pytest.mark.parametrize("live,n", [
        (1, 4), (2, 4), (4, 4),
        (16, 128), (32, 128), (64, 128), (128, 128),
        (64, 256),
    ])
    def test_equals_pad_then_full(self, rng, live, n):
        x = _random_complex(rng, (3, live))
        padded = np.zeros((3, n), dtype=x.dtype)
        padded[:, :live] = x
        assert np.allclose(zero_padded_fft(x, n), np.fft.fft(padded), atol=1e-9)

    def test_axis_handling(self, rng):
        x = _random_complex(rng, (8, 3))
        out = zero_padded_fft(x, 32, axis=0)
        assert out.shape == (32, 3)
        assert np.allclose(out, np.fft.fft(x, n=32, axis=0), atol=1e-9)

    def test_bad_output_length_rejected(self, rng):
        x = _random_complex(rng, (2, 16))
        with pytest.raises(ValueError):
            zero_padded_fft(x, 24)  # not a power of two
        with pytest.raises(ValueError):
            zero_padded_fft(x, 8)  # shorter than input


class TestTruncatedIFFT:
    @pytest.mark.parametrize("live,n", [
        (2, 4), (16, 128), (64, 128), (64, 256), (128, 128),
    ])
    def test_equals_pad_then_ifft(self, rng, live, n):
        xk = _random_complex(rng, (3, live))
        padded = np.zeros((3, n), dtype=xk.dtype)
        padded[:, :live] = xk
        assert np.allclose(truncated_ifft(xk, n), np.fft.ifft(padded), atol=1e-10)

    def test_fno_step45_composition(self, rng):
        """truncate -> mix -> truncated_ifft is the paper's Steps 2-5."""
        x = _random_complex(rng, (2, 128))
        low = truncated_fft(x, 32)
        out = truncated_ifft(low, 128)
        # Equivalent to an ideal low-pass filter.
        ref = np.fft.fft(x)
        ref[:, 32:] = 0
        assert np.allclose(out, np.fft.ifft(ref), atol=1e-9)

    def test_identity_when_no_padding(self, rng):
        xk = _random_complex(rng, (2, 64))
        assert np.allclose(truncated_ifft(xk, 64), np.fft.ifft(xk), atol=1e-10)


@st.composite
def _trunc_cases(draw):
    log_n = draw(st.integers(1, 7))
    n = 2**log_n
    keep = 2 ** draw(st.integers(0, log_n))
    batch = draw(st.integers(1, 3))
    elems = st.floats(-50, 50, allow_nan=False, width=32)
    re = draw(st.lists(st.lists(elems, min_size=n, max_size=n),
                       min_size=batch, max_size=batch))
    return np.asarray(re, dtype=np.float64), keep


class TestProperties:
    @given(_trunc_cases())
    @settings(max_examples=30, deadline=None)
    def test_truncation_always_matches_slice(self, case):
        x, keep = case
        assert np.allclose(
            truncated_fft(x, keep), fft(x)[..., :keep],
            atol=1e-8 * (1 + np.abs(x).max()),
        )

    @given(_trunc_cases())
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_is_lowpass_projection(self, case):
        x, keep = case
        n = x.shape[-1]
        once = truncated_ifft(truncated_fft(x, keep), n)
        twice = truncated_ifft(truncated_fft(once, keep), n)
        # Projection property: applying the filter twice changes nothing.
        assert np.allclose(once, twice, atol=1e-7 * (1 + np.abs(x).max()))

    @given(_trunc_cases())
    @settings(max_examples=30, deadline=None)
    def test_padding_adjoint_of_truncation(self, case):
        """<truncate(fft(x)), y> == <x, conj-adjoint>: checked via energy."""
        x, keep = case
        n = x.shape[-1]
        xk = truncated_fft(x, keep)
        # ifft(pad(.)) then fft then slice recovers xk exactly.
        back = truncated_fft(truncated_ifft(xk, n), keep)
        assert np.allclose(back, xk, atol=1e-7 * (1 + np.abs(xk).max()))
