"""Physics sanity tests for the PDE workload generators."""

import numpy as np
import pytest

from repro.fft.stockham import fft
from repro.pde.burgers import burgers_dataset, solve_burgers
from repro.pde.darcy import darcy_dataset, solve_darcy, threshold_coefficient
from repro.pde.grf import grf_1d, grf_2d
from repro.pde.navier_stokes import (
    default_forcing,
    navier_stokes_dataset,
    solve_navier_stokes,
)


class TestGRF:
    def test_1d_shape_and_zero_mean(self, rng):
        g = grf_1d(50, 64, rng=rng)
        assert g.shape == (50, 64)
        # Spatial mean of each sample is exactly zero (DC removed).
        assert np.allclose(g.mean(axis=1), 0.0, atol=1e-12)

    def test_1d_deterministic_with_seed(self):
        a = grf_1d(3, 32, rng=np.random.default_rng(9))
        b = grf_1d(3, 32, rng=np.random.default_rng(9))
        assert np.allclose(a, b)

    def test_1d_spectrum_decays(self, rng):
        g = grf_1d(200, 128, alpha=2.0, tau=5.0, rng=rng)
        spec = np.mean(np.abs(fft(g)) ** 2, axis=0)
        low = spec[1:5].mean()
        high = spec[30:60].mean()
        assert low > 10 * high

    def test_1d_smoother_with_larger_alpha(self, rng):
        rough = grf_1d(100, 128, alpha=1.0, tau=5.0, sigma=1.0, rng=rng)
        smooth = grf_1d(100, 128, alpha=3.0, tau=5.0, sigma=1.0,
                        rng=np.random.default_rng(0))

        def roughness(f):
            return np.mean(np.diff(f, axis=1) ** 2) / np.mean(f**2)

        assert roughness(smooth) < roughness(rough)

    def test_2d_shape_and_zero_mean(self, rng):
        g = grf_2d(10, 16, 32, rng=rng)
        assert g.shape == (10, 16, 32)
        assert np.allclose(g.mean(axis=(1, 2)), 0.0, atol=1e-12)

    @pytest.mark.parametrize("bad", [
        dict(n_samples=0, n=64),
        dict(n_samples=1, n=100),
        dict(n_samples=1, n=64, alpha=0.4),
    ])
    def test_1d_validation(self, bad):
        with pytest.raises(ValueError):
            grf_1d(**bad)

    def test_2d_validation(self):
        with pytest.raises(ValueError):
            grf_2d(1, 16, 24)
        with pytest.raises(ValueError):
            grf_2d(1, 16, 16, alpha=0.9)


class TestBurgers:
    def test_viscosity_dissipates_energy(self, rng):
        u0 = grf_1d(4, 128, rng=rng)
        ut = solve_burgers(u0, t_final=0.5, nu=0.05, n_steps=200)
        assert np.all(np.sum(ut**2, axis=1) < np.sum(u0**2, axis=1))

    def test_mean_is_conserved(self, rng):
        u0 = grf_1d(3, 64, rng=rng) + 0.7  # non-zero mean
        ut = solve_burgers(u0, t_final=0.2, nu=0.02, n_steps=100)
        assert np.allclose(ut.mean(axis=1), u0.mean(axis=1), atol=1e-8)

    def test_linear_limit_matches_heat_kernel(self):
        """Tiny amplitude => advection negligible => exact mode decay."""
        n, nu, t = 64, 0.05, 0.1
        x = np.arange(n) / n
        amp = 1e-6
        u0 = amp * np.sin(2 * np.pi * x)[None, :]
        ut = solve_burgers(u0, t_final=t, nu=nu, n_steps=400)
        decay = np.exp(-nu * (2 * np.pi) ** 2 * t)
        assert np.allclose(ut, u0 * decay, atol=amp * 1e-4)

    def test_shock_steepening_moves_energy_to_high_freq(self):
        """Inviscid-limit behaviour: advection creates high frequencies."""
        n = 128
        x = np.arange(n) / n
        u0 = np.sin(2 * np.pi * x)[None, :]
        ut = solve_burgers(u0, t_final=0.1, nu=1e-3, n_steps=400)
        spec0 = np.abs(fft(u0))[0]
        spect = np.abs(fft(ut))[0]
        assert spect[2:8].sum() > spec0[2:8].sum()

    def test_dataset_shapes(self):
        u0, ut = burgers_dataset(3, n=64, t_final=0.2, n_steps=64)
        assert u0.shape == ut.shape == (3, 64)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            solve_burgers(rng.standard_normal((2, 100)))
        with pytest.raises(ValueError):
            solve_burgers(rng.standard_normal((2, 64)), nu=-1.0)


class TestDarcy:
    def test_max_principle_nonnegative(self, rng):
        a = threshold_coefficient(grf_2d(1, 16, 16, rng=rng)[0])
        u = solve_darcy(a, f=1.0)
        assert np.all(u >= -1e-12)

    def test_constant_coefficient_symmetry(self):
        u = solve_darcy(np.ones((24, 24)), f=1.0)
        assert np.allclose(u, u[::-1, :], atol=1e-10)
        assert np.allclose(u, u[:, ::-1], atol=1e-10)
        assert np.allclose(u, u.T, atol=1e-10)

    def test_linearity_in_forcing(self):
        a = np.ones((12, 12)) * 2.0
        assert np.allclose(solve_darcy(a, 2.0), 2 * solve_darcy(a, 1.0),
                           atol=1e-12)

    def test_scaling_in_coefficient(self):
        a = np.full((12, 12), 3.0)
        assert np.allclose(solve_darcy(2 * a), solve_darcy(a) / 2, atol=1e-12)

    def test_constant_coefficient_matches_series_solution(self):
        """-Lap(u) = 1 on the unit square: peak value ~0.07367."""
        u = solve_darcy(np.ones((64, 64)), f=1.0)
        assert u.max() == pytest.approx(0.07367, abs=2e-3)

    def test_threshold_coefficient(self):
        f = np.array([[-1.0, 0.5], [0.0, -2.0]])
        a = threshold_coefficient(f)
        assert a[0, 0] == 3.0 and a[0, 1] == 12.0 and a[1, 0] == 12.0
        with pytest.raises(ValueError):
            threshold_coefficient(f, hi=-1.0)

    def test_dataset_shapes(self):
        a, u = darcy_dataset(2, n=16)
        assert a.shape == u.shape == (2, 16, 16)
        assert set(np.unique(a)) <= {3.0, 12.0}

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_darcy(np.ones((4, 5)))
        with pytest.raises(ValueError):
            solve_darcy(np.zeros((4, 4)))


class TestNavierStokes:
    def test_mean_vorticity_conserved(self, rng):
        w0 = grf_2d(2, 32, 32, alpha=2.5, tau=7.0, rng=rng)
        wt = solve_navier_stokes(w0, t_final=0.2, nu=1e-3, n_steps=40)
        # Forcing has zero mean, advection conserves the mean.
        assert np.allclose(wt.mean(axis=(1, 2)), w0.mean(axis=(1, 2)),
                           atol=1e-10)

    def test_unforced_viscous_decay(self, rng):
        w0 = grf_2d(1, 32, 32, alpha=2.5, tau=7.0, rng=rng)
        wt = solve_navier_stokes(
            w0, t_final=0.3, nu=5e-2, n_steps=60,
            forcing=np.zeros((32, 32)),
        )
        assert np.sum(wt**2) < np.sum(w0**2)

    def test_pure_diffusion_of_single_mode(self):
        """Zero initial velocity interactions: one mode decays exactly."""
        n, nu, t = 32, 1e-2, 0.25
        xs = (np.arange(n) + 0.5) / n
        w0 = np.sin(2 * np.pi * xs)[None, :, None] * np.ones((1, n, n))
        # Self-advection of a shear flow vanishes (u . grad w = 0).
        wt = solve_navier_stokes(w0, t_final=t, nu=nu, n_steps=50,
                                 forcing=np.zeros((n, n)))
        decay = np.exp(-nu * (2 * np.pi) ** 2 * t)
        assert np.allclose(wt, w0 * decay, atol=1e-6)

    def test_default_forcing_zero_mean(self):
        assert default_forcing(32).mean() == pytest.approx(0.0, abs=1e-12)

    def test_dataset_shapes(self):
        w0, wt = navier_stokes_dataset(2, n=16, t_final=0.1, n_steps=16)
        assert w0.shape == wt.shape == (2, 16, 16)
        assert np.isfinite(wt).all()

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            solve_navier_stokes(rng.standard_normal((2, 16, 24)))
        with pytest.raises(ValueError):
            solve_navier_stokes(rng.standard_normal((2, 16, 16)), nu=0.0)
