"""Tests for the symmetric (original-FNO) spectral filter convention."""

import numpy as np
import pytest

from repro.nn.modules import SpectralConv1d


def _rfft_oracle(x, weight, modes, per_mode):
    """The original FNO layer via numpy.fft.rfft/irfft."""
    n = x.shape[-1]
    xk = np.fft.rfft(x, axis=-1)[..., :modes]
    if per_mode:
        yk = np.einsum("bim,iom->bom", xk, weight)
    else:
        yk = np.einsum("bim,io->bom", xk, weight)
    out_ft = np.zeros((x.shape[0], yk.shape[1], n // 2 + 1), dtype=complex)
    out_ft[..., :modes] = yk
    return np.fft.irfft(out_ft, n=n, axis=-1)


class TestSymmetricForward:
    @pytest.mark.parametrize("per_mode", [True, False])
    def test_matches_rfft_oracle(self, rng, per_mode):
        m = SpectralConv1d(3, 4, 8, rng, per_mode=per_mode, symmetric=True)
        x = rng.standard_normal((2, 3, 32))
        assert np.allclose(m(x), _rfft_oracle(x, m.weight.value, 8, per_mode),
                           atol=1e-10)

    def test_output_genuinely_real_operator(self, rng):
        """Identity weights + symmetric filter = ideal real low-pass."""
        m = SpectralConv1d(1, 1, 4, rng, per_mode=False, symmetric=True)
        m.weight.value = np.ones((1, 1), dtype=complex)
        x = rng.standard_normal((1, 1, 32))
        y = m(x)
        xk = np.fft.rfft(x, axis=-1)
        xk[..., 4:] = 0
        assert np.allclose(y, np.fft.irfft(xk, n=32, axis=-1), atol=1e-10)

    def test_asymmetric_convention_differs(self, rng):
        """The paper's first-bins filter is a different operator."""
        x = rng.standard_normal((1, 2, 32))
        sym = SpectralConv1d(2, 2, 4, rng, per_mode=False, symmetric=True)
        asym = SpectralConv1d(2, 2, 4, rng, per_mode=False, symmetric=False)
        asym.weight.value = sym.weight.value.copy()
        assert not np.allclose(sym(x), asym(x), atol=1e-6)

    def test_modes_cap(self, rng):
        m = SpectralConv1d(1, 1, 20, rng, symmetric=True)
        with pytest.raises(ValueError):
            m(rng.standard_normal((1, 1, 32)))


class TestSymmetricBackward:
    @pytest.mark.parametrize("per_mode", [True, False])
    def test_input_gradient_fd(self, rng, per_mode):
        m = SpectralConv1d(2, 3, 4, rng, per_mode=per_mode, symmetric=True)
        x = rng.standard_normal((2, 2, 16))
        y = m(x)
        g = rng.standard_normal(y.shape)
        gx = m.backward(g.copy())
        eps = 1e-6
        for _ in range(5):
            idx = tuple(int(rng.integers(0, s)) for s in x.shape)
            xp = x.copy(); xp[idx] += eps
            xm = x.copy(); xm[idx] -= eps
            fd = (np.sum(m.forward(xp) * g) - np.sum(m.forward(xm) * g)) / (
                2 * eps
            )
            assert abs(fd - gx[idx]) / max(abs(fd), 1.0) < 1e-5

    def test_weight_gradient_fd(self, rng):
        m = SpectralConv1d(2, 2, 4, rng, per_mode=True, symmetric=True)
        x = rng.standard_normal((2, 2, 16))
        y = m(x)
        g = rng.standard_normal(y.shape)
        m.zero_grad()
        m.forward(x)
        m.backward(g.copy())
        an = m.weight.grad.copy()
        eps = 1e-6
        for _ in range(4):
            idx = tuple(int(rng.integers(0, s)) for s in m.weight.value.shape)
            for delta, part in ((eps, "re"), (1j * eps, "im")):
                orig = m.weight.value[idx]
                m.weight.value[idx] = orig + delta
                fp = np.sum(m.forward(x) * g)
                m.weight.value[idx] = orig - delta
                fm = np.sum(m.forward(x) * g)
                m.weight.value[idx] = orig
                fd = (fp - fm) / (2 * eps)
                got = an[idx].real if part == "re" else an[idx].imag
                assert abs(fd - got) / max(abs(fd), 1.0) < 1e-5

    def test_training_with_symmetric_layer(self, rng):
        """The symmetric layer learns a shift operator."""
        from repro.nn import Adam
        from repro.nn.losses import mse_loss

        m = SpectralConv1d(1, 1, 8, rng, per_mode=True, symmetric=True)
        opt = Adam([m.weight], lr=5e-2)
        x = rng.standard_normal((16, 1, 32))
        y = np.roll(x, 1, axis=-1)
        first = None
        for _ in range(80):
            opt.zero_grad()
            pred = m(x)
            loss, grad = mse_loss(pred, y)
            if first is None:
                first = loss
            m.backward(grad)
            opt.step()
        assert loss < 0.6 * first
