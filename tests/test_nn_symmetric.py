"""Tests for the symmetric (original-FNO) spectral filter convention.

The symmetric layers consume half spectra end-to-end through the
compiled packed-real R2C/C2R plans.  Before that rewiring they realised
the same operator over the full C2C transform (mirror-and-double); the
``TestHalfSpectrumRewiring`` classes below replay that legacy formula
inline and assert the new path reproduces it to tolerance, forward and
backward, including the ``per_mode=False`` dispatch to the compiled
shared-weight CGEMM executor.
"""

import numpy as np
import pytest

from repro.nn.modules import SpectralConv1d, SpectralConv2d


def _rfft_oracle(x, weight, modes, per_mode):
    """The original FNO layer via numpy.fft.rfft/irfft."""
    n = x.shape[-1]
    xk = np.fft.rfft(x, axis=-1)[..., :modes]
    if per_mode:
        yk = np.einsum("bim,iom->bom", xk, weight)
    else:
        yk = np.einsum("bim,io->bom", xk, weight)
    out_ft = np.zeros((x.shape[0], yk.shape[1], n // 2 + 1), dtype=complex)
    out_ft[..., :modes] = yk
    return np.fft.irfft(out_ft, n=n, axis=-1)


def _rfft2_oracle(x, weight, modes_x, modes_y, per_mode):
    """The symmetric 2-D layer via numpy: rfft along Y, C2C along X,
    single kept corner, irfft2-style reconstruction."""
    b, _, dim_x, dim_y = x.shape
    xk = np.fft.rfft(x, axis=3)[..., :modes_y]
    xk = np.fft.fft(xk, axis=2)[:, :, :modes_x]
    if per_mode:
        yk = np.einsum("bimn,iomn->bomn", xk, weight)
    else:
        yk = np.einsum("bimn,io->bomn", xk, weight)
    out_ft = np.zeros((b, yk.shape[1], dim_x, dim_y // 2 + 1), dtype=complex)
    out_ft[:, :, :modes_x, :modes_y] = yk
    return np.fft.irfft(np.fft.ifft(out_ft, axis=2), n=dim_y, axis=3)


def _legacy_c2c_forward(x, weight, modes, per_mode):
    """The pre-rewiring symmetric forward: truncated full-C2C transform,
    mirror-and-double reconstruction (frozen from the seed layer)."""
    from repro.fft import legacy

    n = x.shape[-1]
    xk = legacy.truncated_fft(x.astype(complex), modes, axis=-1)
    if per_mode:
        yk = np.einsum("bim,iom->bom", xk, weight)
    else:
        yk = np.einsum("bim,io->bom", xk, weight)
    base = legacy.truncated_ifft(yk, n, axis=-1).real
    return 2.0 * base - yk[..., 0:1].real / n


def _legacy_c2c_backward(x, weight, grad, modes, per_mode):
    """The pre-rewiring symmetric backward (input and weight cotangents),
    replayed over the frozen legacy transforms."""
    from repro.fft import legacy

    n = x.shape[-1]
    xk = legacy.truncated_fft(x.astype(complex), modes, axis=-1)
    g_yk = 2.0 * legacy.truncated_fft(grad.astype(complex), modes, axis=-1) / n
    g_yk[..., 0] -= np.sum(grad, axis=-1) / n
    if per_mode:
        w_grad = np.einsum("bim,bom->iom", np.conj(xk), g_yk)
        g_xk = np.einsum("bom,iom->bim", g_yk, np.conj(weight))
    else:
        w_grad = np.einsum("bim,bom->io", np.conj(xk), g_yk)
        g_xk = np.einsum("bom,io->bim", g_yk, np.conj(weight))
    g_x = legacy.truncated_ifft(g_xk, n, axis=-1).real * n
    return g_x, w_grad


class TestSymmetricForward:
    @pytest.mark.parametrize("per_mode", [True, False])
    def test_matches_rfft_oracle(self, rng, per_mode):
        m = SpectralConv1d(3, 4, 8, rng, per_mode=per_mode, symmetric=True)
        x = rng.standard_normal((2, 3, 32))
        assert np.allclose(m(x), _rfft_oracle(x, m.weight.value, 8, per_mode),
                           atol=1e-10)

    def test_output_genuinely_real_operator(self, rng):
        """Identity weights + symmetric filter = ideal real low-pass."""
        m = SpectralConv1d(1, 1, 4, rng, per_mode=False, symmetric=True)
        m.weight.value = np.ones((1, 1), dtype=complex)
        x = rng.standard_normal((1, 1, 32))
        y = m(x)
        xk = np.fft.rfft(x, axis=-1)
        xk[..., 4:] = 0
        assert np.allclose(y, np.fft.irfft(xk, n=32, axis=-1), atol=1e-10)

    def test_asymmetric_convention_differs(self, rng):
        """The paper's first-bins filter is a different operator."""
        x = rng.standard_normal((1, 2, 32))
        sym = SpectralConv1d(2, 2, 4, rng, per_mode=False, symmetric=True)
        asym = SpectralConv1d(2, 2, 4, rng, per_mode=False, symmetric=False)
        asym.weight.value = sym.weight.value.copy()
        assert not np.allclose(sym(x), asym(x), atol=1e-6)

    def test_modes_cap(self, rng):
        m = SpectralConv1d(1, 1, 20, rng, symmetric=True)
        with pytest.raises(ValueError):
            m(rng.standard_normal((1, 1, 32)))


class TestSymmetricBackward:
    @pytest.mark.parametrize("per_mode", [True, False])
    def test_input_gradient_fd(self, rng, per_mode):
        m = SpectralConv1d(2, 3, 4, rng, per_mode=per_mode, symmetric=True)
        x = rng.standard_normal((2, 2, 16))
        y = m(x)
        g = rng.standard_normal(y.shape)
        gx = m.backward(g.copy())
        eps = 1e-6
        for _ in range(5):
            idx = tuple(int(rng.integers(0, s)) for s in x.shape)
            xp = x.copy(); xp[idx] += eps
            xm = x.copy(); xm[idx] -= eps
            fd = (np.sum(m.forward(xp) * g) - np.sum(m.forward(xm) * g)) / (
                2 * eps
            )
            assert abs(fd - gx[idx]) / max(abs(fd), 1.0) < 1e-5

    def test_weight_gradient_fd(self, rng):
        m = SpectralConv1d(2, 2, 4, rng, per_mode=True, symmetric=True)
        x = rng.standard_normal((2, 2, 16))
        y = m(x)
        g = rng.standard_normal(y.shape)
        m.zero_grad()
        m.forward(x)
        m.backward(g.copy())
        an = m.weight.grad.copy()
        eps = 1e-6
        for _ in range(4):
            idx = tuple(int(rng.integers(0, s)) for s in m.weight.value.shape)
            for delta, part in ((eps, "re"), (1j * eps, "im")):
                orig = m.weight.value[idx]
                m.weight.value[idx] = orig + delta
                fp = np.sum(m.forward(x) * g)
                m.weight.value[idx] = orig - delta
                fm = np.sum(m.forward(x) * g)
                m.weight.value[idx] = orig
                fd = (fp - fm) / (2 * eps)
                got = an[idx].real if part == "re" else an[idx].imag
                assert abs(fd - got) / max(abs(fd), 1.0) < 1e-5

    def test_training_with_symmetric_layer(self, rng):
        """The symmetric layer learns a shift operator."""
        from repro.nn import Adam
        from repro.nn.losses import mse_loss

        m = SpectralConv1d(1, 1, 8, rng, per_mode=True, symmetric=True)
        opt = Adam([m.weight], lr=5e-2)
        x = rng.standard_normal((16, 1, 32))
        y = np.roll(x, 1, axis=-1)
        first = None
        for _ in range(80):
            opt.zero_grad()
            pred = m(x)
            loss, grad = mse_loss(pred, y)
            if first is None:
                first = loss
            m.backward(grad)
            opt.step()
        assert loss < 0.6 * first


class TestHalfSpectrumRewiring1d:
    """The rfft/irfft rewiring reproduces the pre-rewiring C2C formula."""

    @pytest.mark.parametrize("per_mode", [True, False])
    @pytest.mark.parametrize("n,modes", [(32, 8), (64, 32), (16, 4)])
    def test_forward_matches_legacy_formula(self, rng, per_mode, n, modes):
        m = SpectralConv1d(3, 4, modes, rng, per_mode=per_mode, symmetric=True)
        x = rng.standard_normal((2, 3, n))
        ref = _legacy_c2c_forward(x, m.weight.value, modes, per_mode)
        assert np.allclose(m(x), ref, atol=1e-10)

    @pytest.mark.parametrize("per_mode", [True, False])
    def test_backward_matches_legacy_formula(self, rng, per_mode):
        m = SpectralConv1d(2, 3, 4, rng, per_mode=per_mode, symmetric=True)
        x = rng.standard_normal((3, 2, 16))
        y = m(x)
        g = rng.standard_normal(y.shape)
        m.zero_grad()
        m.forward(x)
        g_x = m.backward(g.copy())
        ref_gx, ref_gw = _legacy_c2c_backward(
            x, m.weight.value, g, 4, per_mode
        )
        assert np.allclose(g_x, ref_gx, atol=1e-10)
        assert np.allclose(m.weight.grad, ref_gw, atol=1e-10)

    def test_per_mode_false_dispatches_to_compiled_executor(self, rng):
        """The shared-weight symmetric forward runs the compiled
        panel-CGEMM executor and agrees with the inline einsum."""
        m = SpectralConv1d(5, 3, 8, rng, per_mode=False, symmetric=True)
        x = rng.standard_normal((4, 5, 64))
        y = m(x)
        assert not np.iscomplexobj(y)
        assert np.allclose(
            y, _rfft_oracle(x, m.weight.value, 8, per_mode=False), atol=1e-10
        )

    def test_half_spectrum_cached_for_backward(self, rng):
        """The cached activation spectrum is the *half* spectrum prefix,
        not the full C2C truncation."""
        m = SpectralConv1d(2, 2, 6, rng, symmetric=True)
        x = rng.standard_normal((1, 2, 32))
        m(x)
        assert m._xk.shape == (1, 2, 6)
        assert np.allclose(
            m._xk, np.fft.rfft(x, axis=-1)[..., :6], atol=1e-10
        )


class TestSymmetric2dForward:
    @pytest.mark.parametrize("per_mode", [True, False])
    def test_matches_rfft2_oracle(self, rng, per_mode):
        m = SpectralConv2d(3, 4, 4, 8, rng, per_mode=per_mode, symmetric=True)
        x = rng.standard_normal((2, 3, 16, 32))
        ref = _rfft2_oracle(x, m.weight.value, 4, 8, per_mode)
        assert np.allclose(m(x), ref, atol=1e-9)

    def test_output_is_real_dtype(self, rng):
        m = SpectralConv2d(2, 2, 4, 4, rng, symmetric=True)
        y = m(rng.standard_normal((1, 2, 16, 16)))
        assert not np.iscomplexobj(y)

    def test_identity_weights_low_pass(self, rng):
        """Identity shared weights = ideal separable low-pass along Y."""
        m = SpectralConv2d(1, 1, 16, 4, rng, per_mode=False, symmetric=True)
        m.weight.value = np.ones((1, 1), dtype=complex)
        x = rng.standard_normal((1, 1, 16, 32))
        y = m(x)
        xk = np.fft.rfft(x, axis=3)
        xk[..., 4:] = 0
        assert np.allclose(y, np.fft.irfft(xk, n=32, axis=3), atol=1e-10)

    def test_asymmetric_convention_differs(self, rng):
        x = rng.standard_normal((1, 2, 16, 32))
        sym = SpectralConv2d(2, 2, 4, 4, rng, per_mode=False, symmetric=True)
        asym = SpectralConv2d(2, 2, 4, 4, rng, per_mode=False, symmetric=False)
        asym.weight.value = sym.weight.value.copy()
        assert not np.allclose(sym(x), asym(x), atol=1e-6)

    def test_modes_cap(self, rng):
        m = SpectralConv2d(1, 1, 4, 20, rng, symmetric=True)
        with pytest.raises(ValueError):
            m(rng.standard_normal((1, 1, 16, 32)))


class TestSymmetric2dBackward:
    @pytest.mark.parametrize("per_mode", [True, False])
    def test_input_gradient_fd(self, rng, per_mode):
        m = SpectralConv2d(2, 3, 4, 4, rng, per_mode=per_mode, symmetric=True)
        x = rng.standard_normal((2, 2, 8, 16))
        y = m(x)
        g = rng.standard_normal(y.shape)
        gx = m.backward(g.copy())
        eps = 1e-6
        for _ in range(5):
            idx = tuple(int(rng.integers(0, s)) for s in x.shape)
            xp = x.copy(); xp[idx] += eps
            xm = x.copy(); xm[idx] -= eps
            fd = (np.sum(m.forward(xp) * g) - np.sum(m.forward(xm) * g)) / (
                2 * eps
            )
            assert abs(fd - gx[idx]) / max(abs(fd), 1.0) < 1e-5

    def test_weight_gradient_fd(self, rng):
        m = SpectralConv2d(2, 2, 2, 4, rng, per_mode=True, symmetric=True)
        x = rng.standard_normal((2, 2, 8, 16))
        y = m(x)
        g = rng.standard_normal(y.shape)
        m.zero_grad()
        m.forward(x)
        m.backward(g.copy())
        an = m.weight.grad.copy()
        eps = 1e-6
        for _ in range(4):
            idx = tuple(int(rng.integers(0, s)) for s in m.weight.value.shape)
            for delta, part in ((eps, "re"), (1j * eps, "im")):
                orig = m.weight.value[idx]
                m.weight.value[idx] = orig + delta
                fp = np.sum(m.forward(x) * g)
                m.weight.value[idx] = orig - delta
                fm = np.sum(m.forward(x) * g)
                m.weight.value[idx] = orig
                fd = (fp - fm) / (2 * eps)
                got = an[idx].real if part == "re" else an[idx].imag
                assert abs(fd - got) / max(abs(fd), 1.0) < 1e-5

    def test_training_with_symmetric_2d_layer(self, rng, rng2):
        """The symmetric 2-D layer recovers a teacher with the same
        mode budget (the target is exactly representable)."""
        from repro.nn import Adam
        from repro.nn.losses import mse_loss

        teacher = SpectralConv2d(1, 1, 4, 8, rng2, per_mode=True,
                                 symmetric=True)
        m = SpectralConv2d(1, 1, 4, 8, rng, per_mode=True, symmetric=True)
        opt = Adam([m.weight], lr=5e-2)
        x = rng.standard_normal((8, 1, 8, 32))
        y = teacher(x)
        first = None
        for _ in range(80):
            opt.zero_grad()
            pred = m(x)
            loss, grad = mse_loss(pred, y)
            if first is None:
                first = loss
            m.backward(grad)
            opt.step()
        assert loss < 0.1 * first


class TestPrunedPlanRouting:
    """The symmetric layers consume the cached pruned-R2C/C2R plan
    family end-to-end: the spectrum a layer caches *is* the pruned
    plan's output, the executor accepts that spectrum back bit-exactly,
    and width disagreements raise the typed mismatch error instead of
    mis-slicing silently."""

    def test_cached_spectrum_is_the_pruned_plan_output(self, rng):
        from repro.fft import compiled

        m = SpectralConv1d(2, 2, 6, rng, symmetric=True)
        x = rng.standard_normal((3, 2, 32))
        m(x)
        plan = compiled.get_pruned_rfft_plan(32, 6, np.float64)
        expected = plan.execute(
            np.ascontiguousarray(x.reshape(-1, 32))
        ).reshape(3, 2, 6)
        assert m._xk.dtype == expected.dtype
        assert np.array_equal(
            m._xk.view(np.float64), expected.view(np.float64)
        )

    def test_forward_bit_identical_to_explicit_pruned_replay(self, rng):
        """The per-mode symmetric forward is exactly the pruned-plan
        composition truncated_rfft -> einsum -> padded_irfft."""
        from repro.fft.real import padded_irfft, truncated_rfft

        m = SpectralConv1d(3, 4, 8, rng, per_mode=True, symmetric=True)
        x = rng.standard_normal((2, 3, 32))
        got = m(x)
        xk = np.ascontiguousarray(truncated_rfft(x, 8, axis=-1))
        yk = np.einsum("bim,iom->bom", xk, m.weight.value)
        ref = padded_irfft(yk, 32, axis=-1)
        assert got.dtype == ref.dtype
        assert np.array_equal(got, ref)

    def test_executor_internal_vs_precomputed_spectrum_bit_identical(
            self, rng):
        """CompiledSpectralConv1D produces the same bytes whether it
        computes the truncated spectrum itself or receives it — both
        sides of the rewire route through one cached pruned plan."""
        from repro.core.compiled import CompiledSpectralConv1D
        from repro.fft.real import truncated_rfft

        w = (rng.standard_normal((5, 3))
             + 1j * rng.standard_normal((5, 3))).astype(np.complex64)
        x = rng.standard_normal((4, 5, 64)).astype(np.float32)
        conv = CompiledSpectralConv1D(w, 8, symmetric=True)
        internal = conv(x)
        passed = conv(x, xk_trunc=truncated_rfft(x, 8, axis=-1))
        assert internal.dtype == passed.dtype
        assert np.array_equal(
            internal.view(np.float32), passed.view(np.float32)
        )

    def test_width_disagreement_raises_typed_error(self, rng):
        from repro.core.compiled import CompiledSpectralConv1D
        from repro.fft.compiled import PrunedPartMismatchError

        w = (rng.standard_normal((5, 3))
             + 1j * rng.standard_normal((5, 3))).astype(np.complex64)
        x = rng.standard_normal((4, 5, 64)).astype(np.float32)
        conv = CompiledSpectralConv1D(w, 8, symmetric=True)
        bad = np.zeros((4, 5, 9), dtype=np.complex64)
        with pytest.raises(PrunedPartMismatchError):
            conv(x, xk_trunc=bad)
        # the typed error is still a ValueError for legacy handlers
        assert issubclass(PrunedPartMismatchError, ValueError)

    @pytest.mark.parametrize("modes", [3, 5, 7])
    @pytest.mark.parametrize("per_mode", [True, False])
    def test_non_pow2_modes_match_rfft_oracle(self, rng, modes, per_mode):
        """Non-power-of-two mode counts exercise the decomposition
        strategy (part < q) inside the layer."""
        m = SpectralConv1d(2, 3, modes, rng, per_mode=per_mode,
                           symmetric=True)
        x = rng.standard_normal((2, 2, 64))
        assert np.allclose(
            m(x), _rfft_oracle(x, m.weight.value, modes, per_mode),
            atol=1e-9,
        )

    @pytest.mark.parametrize("modes_y", [3, 5])
    def test_2d_non_pow2_modes_match_rfft2_oracle(self, rng, modes_y):
        m = SpectralConv2d(2, 3, 4, modes_y, rng, per_mode=True,
                           symmetric=True)
        x = rng.standard_normal((2, 2, 16, 32))
        ref = _rfft2_oracle(x, m.weight.value, 4, modes_y, True)
        assert np.allclose(m(x), ref, atol=1e-9)

    def test_backward_consistent_after_rewire(self, rng):
        """The pruned-plan backward still matches finite differences at
        a non-power-of-two mode count."""
        m = SpectralConv1d(2, 2, 5, rng, per_mode=True, symmetric=True)
        x = rng.standard_normal((2, 2, 32))
        y = m(x)
        g = rng.standard_normal(y.shape)
        gx = m.backward(g.copy())
        eps = 1e-6
        for _ in range(4):
            idx = tuple(int(rng.integers(0, s)) for s in x.shape)
            xp = x.copy(); xp[idx] += eps
            xm = x.copy(); xm[idx] -= eps
            fd = (np.sum(m.forward(xp) * g) - np.sum(m.forward(xm) * g)) / (
                2 * eps
            )
            assert abs(fd - gx[idx]) / max(abs(fd), 1.0) < 1e-5
