"""Tests for ``Session.rollout`` / ``ServePool.rollout``: spectrum-
resident autoregressive rollout serving.

Covers the tentpole acceptance bar — the default (exact) rollout is
bit-identical to the eager per-step ``infer`` loop on every backend —
plus the fast profile's tolerance contract (spectrum-resident stepping
agrees with the exact loop within ``check_rtol`` for every convention
that has a spectrum-resident form, and refuses the ones that don't),
multi-stream micro-batching, keep="all" trajectories, the
``LatencyReservoir`` percentile surfaces in both ``Session.stats()``
and ``ServePool.stats()``, and the serving-layer satellite bugfixes
(``infer_many(queue_depth=0)`` validation, the ``default_session``
double-checked-locking race).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import api
from repro.api import LatencyReservoir, Session, SpectralModel
from repro.api.serve import ServePool
from repro.fft._ckernels import kernels_available
from repro.nn.fno import FNO1d, FNO2d
from repro.nn.modules import SpectralConv1d, SpectralConv2d

BACKENDS = ["ckernels", "numpy"] if kernels_available() else ["numpy"]


def _weight(rng, k=8):
    return ((rng.standard_normal((k, k)) + 1j * rng.standard_normal((k, k)))
            / k).astype(np.complex64)


def _eager(session, model, x0, steps):
    state = x0
    for _ in range(steps):
        state = session.infer(model, state)
    return state


class TestExactBitIdentity:
    """The acceptance bar: exact rollout == eager per-step loop, bitwise."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("symmetric", [False, True])
    def test_executor_1d(self, rng, backend, symmetric):
        w = _weight(rng)
        model = SpectralModel(w, 16, symmetric=symmetric)
        x0 = rng.standard_normal((2, 8, 64)).astype(np.float32)
        with Session(backend=backend, private_caches=True) as s:
            out = s.rollout(model, x0, steps=5)
            ref = _eager(s, model, x0, 5)
        assert out.dtype == ref.dtype
        assert np.array_equal(out, ref)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("symmetric", [False, True])
    def test_executor_2d(self, rng, backend, symmetric):
        w = _weight(rng)
        model = SpectralModel(w, (8, 8), symmetric=symmetric)
        x0 = rng.standard_normal((2, 8, 32, 32)).astype(np.float32)
        with Session(backend=backend, private_caches=True) as s:
            out = s.rollout(model, x0, steps=4)
            ref = _eager(s, model, x0, 4)
        assert np.array_equal(out, ref)

    def test_opaque_callable(self, rng):
        model = FNO2d(1, 1, width=8, modes_x=4, modes_y=4, depth=2, seed=0)
        x0 = rng.standard_normal((1, 1, 16, 16)).astype(np.float32)
        with Session() as s:
            out = s.rollout(model, x0, steps=3)
            ref = _eager(s, model, x0, 3)
        assert np.array_equal(out, ref)

    def test_keep_all_trajectory(self, rng):
        w = _weight(rng)
        model = SpectralModel(w, 16)
        x0 = rng.standard_normal((2, 8, 64)).astype(np.float32)
        with Session() as s:
            traj = s.rollout(model, x0, steps=4, keep="all")
            assert traj.shape == (4, 2, 8, 64)
            state = x0
            for i in range(4):
                state = s.infer(model, state)
                assert np.array_equal(traj[i], state)

    def test_multi_stream_bit_identical(self, rng):
        """Micro-batched concurrent streams match solo rollouts exactly
        (row independence along the batch axis)."""
        w = _weight(rng)
        model = SpectralModel(w, 16)
        streams = [
            (model, rng.standard_normal((1, 8, 64)).astype(np.float32))
            for _ in range(5)
        ]
        with Session() as s:
            many = s.rollout(streams=streams, steps=4, workers=3)
            for (m, x0), out in zip(streams, many):
                assert np.array_equal(out, s.rollout(m, x0, steps=4))

    def test_rollout_many_alias(self, rng):
        w = _weight(rng)
        model = SpectralModel(w, 16)
        streams = [
            (model, rng.standard_normal((1, 8, 64)).astype(np.float32))
            for _ in range(3)
        ]
        with Session() as s:
            a = s.rollout_many(streams, steps=3)
            b = s.rollout(streams=streams, steps=3)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)


class TestFastProfile:
    """Spectrum-resident stepping: close to exact where it's defined,
    refused with a clear error where it isn't."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("symmetric", [False, True])
    def test_executor_1d_close(self, rng, backend, symmetric):
        w = _weight(rng)
        model = SpectralModel(w, 16, symmetric=symmetric)
        x0 = rng.standard_normal((2, 8, 64)).astype(np.float32)
        with Session(backend=backend, private_caches=True) as s:
            # check_rtol makes the session itself re-run the exact loop
            # and raise on divergence.
            s.rollout(model, x0, steps=6, profile="fast", check_rtol=1e-3)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("symmetric", [False, True])
    def test_executor_2d_close(self, rng, backend, symmetric):
        w = _weight(rng)
        model = SpectralModel(w, (8, 8), symmetric=symmetric)
        x0 = rng.standard_normal((2, 8, 32, 32)).astype(np.float32)
        with Session(backend=backend, private_caches=True) as s:
            s.rollout(model, x0, steps=6, profile="fast", check_rtol=1e-3)

    def test_symmetric_layers_close(self, rng):
        x1 = rng.standard_normal((2, 8, 64)).astype(np.float32)
        x2 = rng.standard_normal((2, 8, 32, 32)).astype(np.float32)
        l1 = SpectralConv1d(8, 8, 16, rng, symmetric=True)
        l2 = SpectralConv2d(8, 8, 8, 8, rng, symmetric=True)
        with Session() as s:
            s.rollout(l1, x1, steps=6, profile="fast", check_rtol=1e-4)
            s.rollout(l2, x2, steps=6, profile="fast", check_rtol=1e-4)

    def test_fast_keep_all_matches_eager_outputs(self, rng):
        """Intermediate states synthesize from the pre-projection
        spectrum — each kept frame must track the eager loop, not just
        the final state."""
        w = _weight(rng)
        model = SpectralModel(w, 16, symmetric=True)
        x0 = rng.standard_normal((2, 8, 64)).astype(np.float32)
        with Session() as s:
            fast = s.rollout(model, x0, steps=4, keep="all", profile="fast")
            exact = s.rollout(model, x0, steps=4, keep="all")
        for f, e in zip(fast, exact):
            np.testing.assert_allclose(f, e, rtol=1e-4, atol=1e-4)

    def test_refuses_nonsymmetric_layer(self, rng):
        layer = SpectralConv1d(8, 8, 16, rng, symmetric=False)
        x0 = rng.standard_normal((2, 8, 64)).astype(np.float32)
        with Session() as s:
            with pytest.raises(ValueError, match="exact"):
                s.rollout(layer, x0, steps=2, profile="fast")

    def test_refuses_opaque_callable(self, rng):
        model = FNO1d(1, 1, width=8, modes=4, depth=2, seed=0)
        x0 = rng.standard_normal((1, 1, 32)).astype(np.float32)
        with Session() as s:
            with pytest.raises(ValueError, match="exact"):
                s.rollout(model, x0, steps=2, profile="fast")

    def test_refuses_rectangular_weight(self, rng):
        w = ((rng.standard_normal((8, 4))
              + 1j * rng.standard_normal((8, 4))) / 8).astype(np.complex64)
        model = SpectralModel(w, 16)
        x0 = rng.standard_normal((2, 8, 64)).astype(np.float32)
        with Session() as s:
            with pytest.raises(ValueError, match="square"):
                s.rollout(model, x0, steps=2, profile="fast")

    def test_check_rtol_requires_fast(self, rng):
        w = _weight(rng)
        x0 = rng.standard_normal((2, 8, 64)).astype(np.float32)
        with Session() as s:
            with pytest.raises(ValueError, match="check_rtol"):
                s.rollout(SpectralModel(w, 16), x0, steps=2,
                          check_rtol=1e-3)


class TestRolloutValidation:
    def test_rejects_bad_args(self, rng):
        w = _weight(rng)
        model = SpectralModel(w, 16)
        x0 = rng.standard_normal((2, 8, 64)).astype(np.float32)
        with Session() as s:
            with pytest.raises(ValueError, match="steps"):
                s.rollout(model, x0, steps=0)
            with pytest.raises(ValueError, match="profile"):
                s.rollout(model, x0, steps=1, profile="warp")
            with pytest.raises(ValueError, match="keep"):
                s.rollout(model, x0, steps=1, keep="none")
            with pytest.raises(ValueError, match="streams"):
                s.rollout(model, x0, steps=1, streams=[(model, x0)])
            with pytest.raises(ValueError, match="streams"):
                s.rollout(steps=1)

    def test_rejects_shape_changing_model(self, rng):
        w = ((rng.standard_normal((8, 4))
              + 1j * rng.standard_normal((8, 4))) / 8).astype(np.complex64)
        model = SpectralModel(w, 16)  # 8 channels in, 4 out
        x0 = rng.standard_normal((2, 8, 64)).astype(np.float32)
        with Session() as s:
            with pytest.raises(ValueError, match="shape-preserving"):
                s.rollout(model, x0, steps=2)


class TestLatencyReservoir:
    def test_empty(self):
        r = LatencyReservoir()
        p = r.percentiles()
        assert p["count"] == 0 and p["samples"] == 0
        assert p["p50"] is None and p["p95"] is None and p["p99"] is None

    def test_bounded_and_deterministic(self):
        r = LatencyReservoir(capacity=16)
        for i in range(1000):
            r.record(float(i))
        p = r.percentiles()
        assert p["count"] == 1000
        assert p["samples"] == 16
        assert 0.0 <= p["p50"] <= 999.0
        assert p["p50"] <= p["p95"] <= p["p99"]
        # Seeded Algorithm R: two identical runs sample identically.
        r2 = LatencyReservoir(capacity=16)
        for i in range(1000):
            r2.record(float(i))
        assert r2.percentiles() == p

    def test_session_stats_surfaces(self, rng):
        w = _weight(rng)
        model = SpectralModel(w, 16)
        x0 = rng.standard_normal((2, 8, 64)).astype(np.float32)
        with Session() as s:
            s.rollout(model, x0, steps=3)
            s.infer(model, x0)
            stats = s.stats()
        top = stats["latency"]
        assert set(top) == {"p50", "p95", "p99", "samples", "count"}
        assert top["count"] == 4  # 3 rollout steps + 1 infer
        assert top["p50"] is not None and top["p50"] > 0
        geo = next(iter(stats["per_geometry"].values()))
        assert set(geo["latency"]) == {"p50", "p95", "p99", "samples",
                                       "count"}
        assert geo["latency"]["count"] == 4
        assert stats["rollout"] == {"streams": 1, "steps": 3}


class TestServePoolRollout:
    def test_bit_identity_and_stats(self, rng):
        w = _weight(rng)
        model = SpectralModel(w, 16)
        streams = [
            (model, rng.standard_normal((1, 8, 64)).astype(np.float32))
            for _ in range(4)
        ]
        with Session() as s:
            refs = s.rollout_many(streams, steps=5)
        with ServePool(workers=2, backend="numpy") as pool:
            outs = pool.rollout_many(streams, steps=5, timeout=120)
            single = pool.rollout(model, streams[0][1], steps=5,
                                  timeout=120)
            stats = pool.stats()
        for ref, out in zip(refs, outs):
            assert out.dtype == ref.dtype
            assert np.array_equal(out, ref)
        assert np.array_equal(single, refs[0])
        assert stats["rollout"] == {"streams": 5, "steps": 25}
        top = stats["latency"]
        assert set(top) == {"p50", "p95", "p99", "samples", "count"}
        assert top["count"] == 5 and top["p50"] > 0
        geo = next(iter(stats["per_geometry"].values()))
        assert geo["latency"]["count"] > 0

    def test_stream_routes_to_geometry_shard(self, rng):
        """A whole stream lands on the one shard its geometry hashes
        to — per-geometry stats record exactly one worker."""
        w = _weight(rng)
        model = SpectralModel(w, 16)
        x0 = rng.standard_normal((1, 8, 64)).astype(np.float32)
        with ServePool(workers=4, backend="numpy") as pool:
            expected = pool.shard_of(model, x0)
            pool.rollout(model, x0, steps=4, timeout=120)
            stats = pool.stats()
        (geo,) = stats["per_geometry"].values()
        assert geo["worker"] == expected

    def test_validation(self, rng):
        w = _weight(rng)
        model = SpectralModel(w, 16)
        x0 = rng.standard_normal((1, 8, 64)).astype(np.float32)
        with ServePool(workers=1, backend="numpy") as pool:
            with pytest.raises(ValueError, match="steps"):
                pool.submit_rollout(model, x0, 0)
            with pytest.raises(ValueError, match="profile"):
                pool.submit_rollout(model, x0, 2, profile="warp")


class TestServingSatelliteFixes:
    def test_infer_many_rejects_queue_depth_zero(self, rng):
        """queue_depth=0 used to coerce falsy to the default, silently
        unbounding the queue; it must raise instead."""
        w = _weight(rng)
        reqs = [(SpectralModel(w, 16),
                 rng.standard_normal((2, 8, 64)).astype(np.float32))]
        with Session() as s:
            with pytest.raises(ValueError, match="queue_depth"):
                s.infer_many(reqs, queue_depth=0)
            with pytest.raises(ValueError, match="queue_depth"):
                s.infer_many(reqs, queue_depth=-1)
            assert len(s.infer_many(reqs, queue_depth=1)) == 1

    def test_default_session_threaded_race(self):
        """Every thread racing default_session() after a close() must
        get the same replacement session (the unlocked ``_closed``
        fast-path read was the bug)."""
        api.default_session().close()
        barrier = threading.Barrier(8)
        seen: list[int] = []
        lock = threading.Lock()

        def grab():
            barrier.wait()
            s = api.default_session()
            with lock:
                seen.append(id(s))

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(seen)) == 1
        assert not api.default_session()._closed
