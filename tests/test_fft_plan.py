"""Tests for FFT plans (geometry, work model, Table 1 parameters)."""

import pytest

from repro.fft.opcount import fft_flops
from repro.fft.plan import FFTPlan


class TestGeometry:
    def test_table1_n1_configuration(self):
        # Table 1: N1 = 128, n1 = 8, bs = 8 -> 16 threads/signal, 128/block.
        plan = FFTPlan(n=128, batch=1024, per_thread=8, signals_per_block=8)
        assert plan.threads_per_signal == 16
        assert plan.threads_per_block == 128
        assert plan.blocks == 128

    def test_table1_n2_configuration(self):
        # Table 1: N2 = 256, n2 = 16, bs = 8.
        plan = FFTPlan(n=256, batch=64, per_thread=16, signals_per_block=8)
        assert plan.threads_per_signal == 16
        assert plan.threads_per_block == 128
        assert plan.blocks == 8

    def test_blocks_ceiling(self):
        assert FFTPlan(n=64, batch=9, signals_per_block=8).blocks == 2

    def test_kloop_variant_shrinks_grid(self):
        # batch = n_signals * hidden pencils; the k-loop block owns all
        # hidden channels of its slot, so the grid divides by hidden.
        flat = FFTPlan(n=128, batch=64 * 32, signals_per_block=8)
        kloop = FFTPlan(n=128, batch=64 * 32, signals_per_block=8,
                        kloop_hidden=32)
        assert flat.blocks == 64 * 32 // 8
        assert kloop.blocks == 64
        assert kloop.blocks < flat.blocks

    def test_smem_holds_full_signals(self):
        plan = FFTPlan(n=128, batch=8, signals_per_block=8)
        assert plan.smem_bytes_per_block == 8 * 128 * 8


class TestWorkModel:
    def test_defaults_keep_and_live_full(self):
        plan = FFTPlan(n=128, batch=4)
        assert plan.keep == 128 and plan.live == 128
        assert plan.prune_fraction() == 1.0
        assert plan.flops() == pytest.approx(fft_flops(128, 4))

    def test_truncation_reduces_writes_and_flops(self):
        full = FFTPlan(n=128, batch=16)
        trunc = FFTPlan(n=128, batch=16, n_keep=32)
        assert trunc.global_bytes_written() == full.global_bytes_written() / 4
        assert trunc.flops() < full.flops()
        assert trunc.global_bytes_read() == full.global_bytes_read()

    def test_padding_reduces_reads(self):
        full = FFTPlan(n=128, batch=16)
        padded = FFTPlan(n=128, batch=16, n_live=64)
        assert padded.global_bytes_read() == full.global_bytes_read() / 2
        assert padded.global_bytes_written() == full.global_bytes_written()
        assert padded.flops() < full.flops()

    def test_truncation_factor_is_filter_over_input(self):
        # §3.3: writes shrink by Filter_size / Input_size.
        plan = FFTPlan(n=256, batch=10, n_keep=64)
        assert plan.global_bytes_written() == pytest.approx(
            plan.global_bytes_read() * 64 / 256
        )


class TestValidation:
    @pytest.mark.parametrize("kw", [
        dict(n=100, batch=1),
        dict(n=128, batch=0),
        dict(n=128, batch=1, n_keep=3),
        dict(n=128, batch=1, n_keep=256),
        dict(n=128, batch=1, n_live=0),
        dict(n=128, batch=1, per_thread=3),
        dict(n=128, batch=1, per_thread=256),
        dict(n=128, batch=1, signals_per_block=0),
        dict(n=128, batch=1, kloop_hidden=0),
    ])
    def test_invalid_plans_rejected(self, kw):
        with pytest.raises(ValueError):
            FFTPlan(**kw)
