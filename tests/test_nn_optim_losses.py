"""Tests for optimizers and losses."""

import numpy as np
import pytest

from repro.nn.losses import mse_loss, relative_l2_loss
from repro.nn.modules import Parameter
from repro.nn.optim import SGD, Adam


def _quadratic_param(start):
    """Parameter minimising ||p - 3||^2 via grad = 2(p - 3)."""
    return Parameter(np.array(start, dtype=np.float64))


class TestSGD:
    def test_converges_on_quadratic(self):
        p = _quadratic_param([0.0, 10.0])
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            p.grad = 2 * (p.value - 3.0)
            opt.step()
        assert np.allclose(p.value, 3.0, atol=1e-6)

    def test_momentum_accelerates(self):
        losses = {}
        for mom in (0.0, 0.9):
            p = _quadratic_param([10.0])
            opt = SGD([p], lr=0.02, momentum=mom)
            for _ in range(50):
                p.grad = 2 * (p.value - 3.0)
                opt.step()
            losses[mom] = abs(p.value[0] - 3.0)
        assert losses[0.9] < losses[0.0]

    def test_zero_grad(self):
        p = _quadratic_param([1.0])
        p.grad[...] = 5.0
        SGD([p], lr=0.1).zero_grad()
        assert np.all(p.grad == 0)

    @pytest.mark.parametrize("kw", [dict(lr=0), dict(lr=0.1, momentum=1.0)])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            SGD([_quadratic_param([1.0])], **kw)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = _quadratic_param([0.0, 10.0, -5.0])
        opt = Adam([p], lr=0.2)
        for _ in range(300):
            p.grad = 2 * (p.value - 3.0)
            opt.step()
        assert np.allclose(p.value, 3.0, atol=1e-4)

    def test_complex_parameter(self):
        target = np.array([1.0 + 2.0j])
        p = Parameter(np.array([0.0 + 0.0j]))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            # grad of |p - t|^2 in the stored-gradient convention.
            diff = p.value - target
            p.grad = 2 * diff
            opt.step()
        assert np.allclose(p.value, target, atol=1e-3)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([10.0]))
        opt = Adam([p], lr=0.1, weight_decay=0.5)
        for _ in range(100):
            p.grad = np.zeros(1)
            opt.step()
        assert abs(p.value[0]) < 10.0

    @pytest.mark.parametrize("kw", [
        dict(lr=-1.0), dict(betas=(1.0, 0.9)), dict(weight_decay=-0.1),
    ])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            Adam([_quadratic_param([1.0])], **kw)


class TestLosses:
    def test_mse_value(self):
        pred = np.array([[1.0, 2.0]])
        tgt = np.array([[0.0, 0.0]])
        loss, grad = mse_loss(pred, tgt)
        assert loss == pytest.approx(2.5)
        assert np.allclose(grad, pred)  # 2/n * diff with n = 2

    def test_mse_gradient_fd(self, rng):
        pred = rng.standard_normal((3, 4))
        tgt = rng.standard_normal((3, 4))
        _, grad = mse_loss(pred, tgt)
        eps = 1e-6
        idx = (1, 2)
        pp = pred.copy(); pp[idx] += eps
        pm = pred.copy(); pm[idx] -= eps
        fd = (mse_loss(pp, tgt)[0] - mse_loss(pm, tgt)[0]) / (2 * eps)
        assert fd == pytest.approx(grad[idx], rel=1e-5)

    def test_relative_l2_perfect_prediction(self, rng):
        y = rng.standard_normal((2, 8))
        loss, _ = relative_l2_loss(y, y)
        assert loss == pytest.approx(0.0, abs=1e-9)

    def test_relative_l2_scale_invariance(self, rng):
        pred = rng.standard_normal((2, 8))
        tgt = rng.standard_normal((2, 8))
        l1, _ = relative_l2_loss(pred, tgt)
        l2, _ = relative_l2_loss(10 * pred, 10 * tgt)
        assert l1 == pytest.approx(l2)

    def test_relative_l2_gradient_fd(self, rng):
        pred = rng.standard_normal((2, 6))
        tgt = rng.standard_normal((2, 6))
        _, grad = relative_l2_loss(pred, tgt)
        eps = 1e-7
        idx = (0, 3)
        pp = pred.copy(); pp[idx] += eps
        pm = pred.copy(); pm[idx] -= eps
        fd = (relative_l2_loss(pp, tgt)[0] - relative_l2_loss(pm, tgt)[0]) / (
            2 * eps
        )
        assert fd == pytest.approx(grad[idx], rel=1e-4)

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            mse_loss(np.zeros((2, 2)), np.zeros((2, 3)))
        with pytest.raises(ValueError):
            relative_l2_loss(np.zeros((2, 2)), np.zeros((3, 2)))
