"""Tests for pipelines and the speedup metric."""

import pytest

from repro.gpu.counters import PerfCounters
from repro.gpu.device import A100_SPEC
from repro.gpu.kernel import KernelSpec, LaunchConfig, kernel_time
from repro.gpu.timeline import Pipeline, speedup_percent


def _k(name: str, flops: float = 1e10) -> KernelSpec:
    return KernelSpec(
        name, LaunchConfig(2048, 256), PerfCounters(flops=flops)
    )


class TestPipeline:
    def test_total_is_sum_of_kernels(self):
        pipe = Pipeline("p").add(_k("a")).add(_k("b", 2e10))
        per = [kernel_time(k, A100_SPEC).total for k in pipe.kernels]
        assert pipe.total_time(A100_SPEC) == pytest.approx(sum(per))

    def test_counters_include_launches(self):
        pipe = Pipeline("p").add(_k("a")).add(_k("b"))
        c = pipe.counters()
        assert c.kernel_launches == 2
        assert c.flops == 2e10

    def test_report_breakdown_lists_kernels(self):
        pipe = Pipeline("p").add(_k("alpha")).add(_k("beta"))
        rep = pipe.report(A100_SPEC)
        assert rep.launch_count == 2
        text = rep.breakdown()
        assert "alpha" in text and "beta" in text

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            Pipeline("empty").report(A100_SPEC)

    def test_add_chains(self):
        pipe = Pipeline("p")
        assert pipe.add(_k("a")) is pipe


class TestSpeedupMetric:
    def test_parity_is_zero(self):
        assert speedup_percent(1.0, 1.0) == pytest.approx(0.0)

    def test_paper_units(self):
        # "150 % faster" means 2.5x: t_base / t_opt = 2.5.
        assert speedup_percent(2.5, 1.0) == pytest.approx(150.0)

    def test_slowdown_is_negative(self):
        assert speedup_percent(1.0, 2.0) == pytest.approx(-50.0)

    @pytest.mark.parametrize("base,opt", [(0.0, 1.0), (1.0, 0.0), (-1.0, 1.0)])
    def test_invalid_times(self, base, opt):
        with pytest.raises(ValueError):
            speedup_percent(base, opt)
