"""Tests for the templated CGEMM parameters (Table 1)."""

import pytest

from repro.gemm.params import (
    GemmParams,
    SECT31_CGEMM,
    SECT51_CGEMM,
    TABLE1_CGEMM,
)


class TestPaperConfigurations:
    def test_table1(self):
        p = TABLE1_CGEMM
        assert (p.m_tb, p.n_tb, p.k_tb) == (32, 32, 8)
        assert (p.m_w, p.n_w) == (32, 16)
        assert (p.m_t, p.n_t) == (4, 4)
        assert p.warps_per_block == 2
        assert p.threads_per_block == 64

    def test_sect31(self):
        assert SECT31_CGEMM.m_tb == 64 and SECT31_CGEMM.n_tb == 64
        assert SECT31_CGEMM.threads_per_block == 256

    def test_sect51(self):
        assert SECT51_CGEMM.n_tb == 128
        assert SECT51_CGEMM.warps_per_block == 16

    def test_warp_tile_is_exactly_one_warp(self):
        for p in (TABLE1_CGEMM, SECT31_CGEMM, SECT51_CGEMM):
            assert p.threads_per_warp_tile == 32


class TestDerivedGeometry:
    def test_grid_blocks_exact_tiling(self):
        assert TABLE1_CGEMM.grid_blocks(64, 64) == 4

    def test_grid_blocks_ceiling(self):
        assert TABLE1_CGEMM.grid_blocks(33, 1) == 2

    def test_k_iterations(self):
        assert TABLE1_CGEMM.k_iterations(64) == 8
        assert TABLE1_CGEMM.k_iterations(9) == 2

    def test_smem_double_buffering_doubles(self):
        p = TABLE1_CGEMM
        assert p.smem_bytes(True) == 2 * p.smem_bytes(False)
        # (32*8 + 8*32) complex64 = 512 * 8 bytes single-buffered.
        assert p.smem_bytes(False) == 512 * 8

    def test_describe_mentions_tiles(self):
        assert "32x32x8" in TABLE1_CGEMM.describe()

    @pytest.mark.parametrize("m,n", [(0, 4), (4, 0), (-1, 1)])
    def test_grid_blocks_validation(self, m, n):
        with pytest.raises(ValueError):
            TABLE1_CGEMM.grid_blocks(m, n)

    def test_k_iterations_validation(self):
        with pytest.raises(ValueError):
            TABLE1_CGEMM.k_iterations(0)


class TestValidation:
    def test_block_not_multiple_of_warp(self):
        with pytest.raises(ValueError):
            GemmParams(m_tb=48, n_tb=32, m_w=32, n_w=16)

    def test_warp_not_multiple_of_thread(self):
        with pytest.raises(ValueError):
            GemmParams(m_w=32, n_w=16, m_t=5, n_t=4)

    def test_wrong_warp_size(self):
        # 16x16 warp tile with 4x4 thread tiles -> 16 threads != 32.
        with pytest.raises(ValueError):
            GemmParams(m_tb=32, n_tb=32, m_w=16, n_w=16)

    def test_non_positive_fields(self):
        with pytest.raises(ValueError):
            GemmParams(k_tb=0)
