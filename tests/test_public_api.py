"""Public-API surface tests: everything a downstream user imports exists."""

import numpy as np
import pytest


class TestTopLevel:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_headline_workflow(self):
        """The README's quickstart snippet, condensed — via the facade."""
        from repro import FNO1DProblem, FusionStage, api

        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 8, 32)).astype(np.complex64)
        w = (np.eye(8) + 0j).astype(np.complex64)
        y1 = api.spectral_conv(x, w, modes=8, engine="turbo")
        y2 = api.spectral_conv(x, w, modes=8, engine="pytorch")
        assert np.allclose(y1, y2, atol=1e-4)

        prob = FNO1DProblem.from_m_spatial(2**16, 64, 128, 64)
        base = api.plan(prob, FusionStage.PYTORCH).total_time
        fused = api.plan(prob, FusionStage.FUSED_ALL).total_time
        assert fused < base

    def test_legacy_workflow_still_importable(self):
        """Pre-facade imports keep working (as deprecated shims)."""
        from repro import FNO1DProblem, FusionStage, build_pipeline_1d

        prob = FNO1DProblem.from_m_spatial(2**16, 64, 128, 64)
        pipe = build_pipeline_1d(prob, FusionStage.FUSED_ALL)
        assert pipe.total_time() > 0


class TestSubpackageExports:
    @pytest.mark.parametrize("module,names", [
        ("repro.fft", ["fft", "ifft", "fft2", "truncated_fft", "rfft",
                       "fft_radix4", "FFTPlan", "butterfly_ops"]),
        ("repro.gemm", ["blocked_cgemm", "GemmParams", "TABLE1_CGEMM",
                        "gemm_counters"]),
        ("repro.gpu", ["A100_SPEC", "DeviceSpec", "KernelSpec", "Pipeline",
                       "SharedMemoryBankModel"]),
        ("repro.core", ["spectral_conv_1d", "spectral_conv_2d",
                        "fused_fft_gemm_ifft_1d", "FusionStage",
                        "TurboFNOConfig"]),
        ("repro.nn", ["FNO1d", "FNO2d", "Adam", "SGD", "StepLR", "CosineLR",
                      "clip_grad_norm", "train"]),
        ("repro.pde", ["grf_1d", "grf_2d", "solve_burgers", "solve_darcy",
                       "solve_navier_stokes"]),
        ("repro.analysis", ["figures", "render_series", "render_heatmap",
                            "pipeline_roofline", "ridge_point"]),
        ("repro.api", ["Problem", "describe_problem", "ExecutionPlan",
                       "plan", "plan_cache_info", "clear_plan_cache",
                       "clear_all_caches", "Session", "SpectralModel",
                       "default_session",
                       "Runner", "spectral_conv", "get_device",
                       "register_device", "list_devices", "resolve_stage",
                       "list_stages", "register_pipeline_builder",
                       "supported_ndims", "DEFAULT_DEVICE"]),
        ("repro.baselines", ["cufft_kernel", "cublas_cgemm_kernel",
                             "pytorch_like_spectral_conv_1d"]),
    ])
    def test_exports(self, module, names):
        import importlib

        mod = importlib.import_module(module)
        for name in names:
            assert hasattr(mod, name), f"{module}.{name}"

    def test_docstrings_on_public_callables(self):
        """Every public function/class in the core packages is documented."""
        import importlib
        import inspect

        for module in ("repro.fft.stockham", "repro.fft.pruned",
                       "repro.gemm.blocked", "repro.core.fused",
                       "repro.core.spectral", "repro.gpu.kernel",
                       "repro.nn.modules", "repro.pde.burgers",
                       "repro.api.planner", "repro.api.registry",
                       "repro.api.runner", "repro.api.ops",
                       "repro.api.session"):
            mod = importlib.import_module(module)
            for name in getattr(mod, "__all__", []):
                obj = getattr(mod, name)
                if inspect.isfunction(obj) or inspect.isclass(obj):
                    assert obj.__doc__, f"{module}.{name} lacks a docstring"
