"""Unit tests for the tile-autotune subsystem (``repro.core.autotune``).

Covers the candidate grid and the analytic seed model, the persistent
tune store's robustness contract (corrupt/stale/read-only inputs never
raise, ``REPRO_TUNE_CACHE`` overrides the location), the tuner's
hit/miss/retune semantics, the executor ``tiles=`` argument validation,
the session integration (``Session(autotune=...)``, stats counters,
cache eviction, warmup pre-tuning) and the ``tune`` CLI command.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro import api
from repro.core.autotune import (
    TUNE_STORE_VERSION,
    Tiles,
    TuneKey,
    TuneStore,
    Tuner,
    batch_bucket,
    candidate_tiles,
    default_tune_store,
    predicted_cost,
    tune_store_path,
)
from repro.core.compiled import (
    CompiledSpectralConv1D,
    CompiledSpectralConv2D,
    compile_spectral_conv,
)
from repro.core.config import FNO1DProblem
from repro.gpu.sharedmem import StagingOccupancy


def _weight(rng, c_in=8, c_out=8):
    return ((rng.standard_normal((c_in, c_out))
             + 1j * rng.standard_normal((c_in, c_out))) / c_in
            ).astype(np.complex64)


def _key(**overrides) -> TuneKey:
    base = dict(kind="fused1d", spatial=(32,), modes=(16,), c_in=8,
                c_out=8, k_tb=8, batch_bucket=32, dtype="complex64",
                backend="numpy")
    base.update(overrides)
    return TuneKey(**base)


# ---------------------------------------------------------------------------
# batch bucketing, candidate grid, seed model
# ---------------------------------------------------------------------------

class TestGridAndModel:
    def test_batch_bucket_floor_and_cap(self):
        assert batch_bucket(1) == 32
        assert batch_bucket(32) == 32
        assert batch_bucket(33) == 64
        assert batch_bucket(200) == 256
        assert batch_bucket(10_000) == 256
        with pytest.raises(ValueError):
            batch_bucket(0)

    def test_candidates_are_bit_exact_by_construction(self):
        cands = candidate_tiles(batch=64, c_in=20, c_out=8, modes=16,
                                k_tb=8, max_candidates=None)
        for t in cands:
            assert t.signal_tile >= 1
            # staging width: whole multiple of k_tb, clamped to the
            # panel-covering width of c_in (24 for c_in=20)
            assert t.k_tb % 8 == 0
            assert t.k_tb <= 24
            assert t.signal_tile <= 64

    def test_default_survives_truncation(self):
        default = Tiles(16, 8)
        cands = candidate_tiles(batch=256, c_in=64, c_out=64, modes=64,
                                k_tb=8, max_candidates=4, default=default)
        assert len(cands) == 4
        assert default in cands

    def test_untiled_candidate_only_when_allowed(self):
        with_untiled = candidate_tiles(batch=64, c_in=8, c_out=8, modes=16,
                                       k_tb=8, allow_untiled=True,
                                       k_multipliers=(1,),
                                       max_candidates=None)
        without = candidate_tiles(batch=64, c_in=8, c_out=8, modes=16,
                                  k_tb=8, max_candidates=None)
        assert any(t.signal_tile == 0 for t in with_untiled)
        assert all(t.signal_tile >= 1 for t in without)

    def test_model_penalises_cache_spill(self):
        # Same dispatch structure, working set far beyond the budget:
        # the spilled tile must cost more.
        small = predicted_cost(Tiles(4, 8), batch=64, c_in=8, c_out=8,
                               modes=64)
        huge = predicted_cost(Tiles(4, 8), batch=64, c_in=8, c_out=8,
                              modes=64, cache_bytes=1)
        assert huge > small

    def test_model_prefers_fewer_dispatches_when_both_fit(self):
        tiny_tile = predicted_cost(Tiles(1, 8), batch=256, c_in=8,
                                   c_out=8, modes=16)
        big_tile = predicted_cost(Tiles(64, 8), batch=256, c_in=8,
                                  c_out=8, modes=16)
        assert big_tile < tiny_tile

    def test_staging_occupancy_model(self):
        occ = StagingOccupancy(1024)
        assert occ.fits(1024) and not occ.fits(1025)
        assert occ.occupancy(512) == 1.0
        assert occ.occupancy(2048) == 0.5
        assert occ.spill_factor(512) == 1.0
        assert occ.spill_factor(2048) == 1.5
        with pytest.raises(ValueError):
            StagingOccupancy(0)

    def test_tune_key_string_is_stable(self):
        key = _key()
        assert key.as_string() == \
            "fused1d|32|m16|cin8|cout8|ktb8|b32|complex64|numpy"

    def test_tune_key_separates_accumulation_widths(self):
        # Executors with different accumulation k_tb measure different
        # arithmetic groupings: their winners must never collide.
        assert _key(k_tb=8).as_string() != _key(k_tb=12).as_string()

    def test_bucket_ladder_covers_every_reachable_bucket(self):
        from repro.core.autotune import bucket_ladder

        assert bucket_ladder(1) == [32]
        assert bucket_ladder(32) == [32]
        assert bucket_ladder(100) == [32, 64, 128]
        assert bucket_ladder(10_000) == [32, 64, 128, 256]


# ---------------------------------------------------------------------------
# tune store robustness
# ---------------------------------------------------------------------------

class TestTuneStore:
    def test_roundtrip_across_instances(self, tmp_path):
        path = tmp_path / "store.json"
        TuneStore(path).put("k1", Tiles(64, 16), {"ms": 1.25})
        fresh = TuneStore(path)
        assert fresh.get("k1") == Tiles(64, 16)
        assert fresh.entries() == {"k1": Tiles(64, 16)}

    def test_version_mismatch_ignored(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text(json.dumps({
            "version": TUNE_STORE_VERSION + 1,
            "entries": {"k1": {"signal_tile": 4, "k_tb": 8}},
        }))
        store = TuneStore(path)
        assert store.get("k1") is None
        # a write replaces the stale file with the current version
        store.put("k2", Tiles(8, 8))
        raw = json.loads(path.read_text())
        assert raw["version"] == TUNE_STORE_VERSION
        assert "k1" not in raw["entries"]

    @pytest.mark.parametrize("content", [
        "{not json",
        '"a bare string"',
        json.dumps({"version": TUNE_STORE_VERSION, "entries": "nope"}),
    ])
    def test_corrupt_file_reads_as_empty(self, tmp_path, content):
        path = tmp_path / "store.json"
        path.write_text(content)
        store = TuneStore(path)
        assert store.get("anything") is None
        store.put("k", Tiles(16, 8))  # and stays writable
        assert TuneStore(path).get("k") == Tiles(16, 8)

    @pytest.mark.parametrize("entry", [
        "not-a-dict",
        {"signal_tile": 4},                      # missing k_tb
        {"signal_tile": "4", "k_tb": 8},         # wrong type
        {"signal_tile": True, "k_tb": 8},        # bool is not a tile
        {"signal_tile": -1, "k_tb": 8},          # out of range
        {"signal_tile": 4, "k_tb": 0},
    ])
    def test_malformed_entries_ignored(self, tmp_path, entry):
        path = tmp_path / "store.json"
        path.write_text(json.dumps({
            "version": TUNE_STORE_VERSION,
            "entries": {"bad": entry,
                        "good": {"signal_tile": 4, "k_tb": 8}},
        }))
        store = TuneStore(path)
        assert store.get("bad") is None
        assert store.get("good") == Tiles(4, 8)

    def test_env_override_file_and_directory(self, tmp_path, monkeypatch):
        target = tmp_path / "custom.json"
        monkeypatch.setenv("REPRO_TUNE_CACHE", str(target))
        assert tune_store_path() == target
        default_tune_store().put("env-k", Tiles(32, 8))
        assert json.loads(target.read_text())["entries"]["env-k"] == {
            "signal_tile": 32, "k_tb": 8,
        }
        # a directory override holds the default file name
        monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path))
        assert tune_store_path() == tmp_path / "autotune.json"
        monkeypatch.delenv("REPRO_TUNE_CACHE")
        assert tune_store_path().name == "autotune.json"
        assert ".cache" in str(tune_store_path())

    def test_unwritable_location_falls_back_to_memory(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory is needed")
        # the parent "directory" is a file: every disk write must fail
        store = TuneStore(blocker / "sub" / "store.json")
        store.put("k", Tiles(8, 16))
        assert store.get("k") == Tiles(8, 16)  # served from memory
        assert store.entries() == {"k": Tiles(8, 16)}
        assert not (tmp_path / "sub").exists()


# ---------------------------------------------------------------------------
# tuner semantics
# ---------------------------------------------------------------------------

class TestTuner:
    def test_miss_measures_then_memo_hits(self, tmp_path):
        tuner = Tuner(store=TuneStore(tmp_path / "s.json"))
        calls = []

        def measure(t):
            calls.append(t)
            return 0.001 if t == Tiles(64, 8) else 0.002

        cands = [Tiles(16, 8), Tiles(64, 8)]
        got = tuner.tiles_for(_key(), Tiles(16, 8), cands, measure)
        assert got == Tiles(64, 8)
        assert calls == cands
        assert tuner.stats() == {"hits": 0, "misses": 1, "entries": 1}
        again = tuner.tiles_for(_key(), Tiles(16, 8), cands, measure)
        assert again == got and len(calls) == 2  # no re-measure
        assert tuner.stats()["hits"] == 1

    def test_store_hit_skips_measurement(self, tmp_path):
        store = TuneStore(tmp_path / "s.json")
        Tuner(store=store).tiles_for(
            _key(), Tiles(16, 8), [Tiles(4, 8)], lambda t: 0.001
        )
        fresh = Tuner(store=store)
        got = fresh.tiles_for(
            _key(), Tiles(16, 8), [Tiles(4, 8)],
            lambda t: pytest.fail("must not measure on a store hit"),
        )
        assert got == Tiles(4, 8)
        assert fresh.stats() == {"hits": 1, "misses": 0, "entries": 1}

    def test_invalid_recalled_entry_triggers_retune(self, tmp_path):
        store = TuneStore(tmp_path / "s.json")
        store.put(_key().as_string(), Tiles(16, 12))  # incompatible k
        tuner = Tuner(store=store)
        got = tuner.tiles_for(
            _key(), Tiles(16, 8), [Tiles(8, 8)], lambda t: 0.001,
            is_valid=lambda t: t.k_tb % 8 == 0,
        )
        assert got == Tiles(8, 8)
        assert tuner.stats()["misses"] == 1

    def test_retune_overwrites(self, tmp_path):
        tuner = Tuner(store=TuneStore(tmp_path / "s.json"))
        timings = {Tiles(16, 8): 0.001, Tiles(64, 8): 0.002}
        cands = list(timings)
        assert tuner.tiles_for(
            _key(), Tiles(16, 8), cands, lambda t: timings[t]
        ) == Tiles(16, 8)
        timings[Tiles(64, 8)] = 0.0001  # the machine changed its mind
        assert tuner.tiles_for(
            _key(), Tiles(16, 8), cands, lambda t: timings[t], retune=True
        ) == Tiles(64, 8)
        assert tuner.stats()["misses"] == 2

    def test_clear_memo_keeps_store(self, tmp_path):
        store = TuneStore(tmp_path / "s.json")
        tuner = Tuner(store=store)
        tuner.tiles_for(_key(), Tiles(16, 8), [Tiles(8, 8)],
                        lambda t: 0.001)
        tuner.clear_memo()
        assert tuner.stats()["entries"] == 0
        assert store.get(_key().as_string()) == Tiles(8, 8)

    def test_concurrent_cold_key_searches_once(self, tmp_path):
        """Threads racing one cold key: exactly one runs the timed
        search (the others wait it out and memo-hit), and a search in
        flight never blocks resolutions of other, already-warm keys."""
        import threading

        tuner = Tuner(store=TuneStore(tmp_path / "s.json"))
        warm_key, cold_key = _key(spatial=(64,)), _key()
        tuner.tiles_for(warm_key, Tiles(16, 8), [Tiles(8, 8)],
                        lambda t: 0.001)
        in_search = threading.Event()
        release = threading.Event()
        warm_resolved_mid_search = threading.Event()

        def slow_measure(t):
            in_search.set()
            release.wait(timeout=5)
            return 0.001

        def cold(n):
            tuner.tiles_for(cold_key, Tiles(16, 8), [Tiles(8, 8)],
                            slow_measure)

        threads = [threading.Thread(target=cold, args=(i,))
                   for i in range(3)]
        for t in threads:
            t.start()
        assert in_search.wait(timeout=5)
        # the cold search is mid-measure: a warm key must still resolve
        tuner.tiles_for(warm_key, Tiles(16, 8), [Tiles(8, 8)],
                        lambda t: pytest.fail("warm key re-measured"))
        warm_resolved_mid_search.set()
        release.set()
        for t in threads:
            t.join()
        stats = tuner.stats()
        assert warm_resolved_mid_search.is_set()
        # 5 resolutions: 1 warm miss, 1 cold miss, 3 hits
        assert stats["misses"] == 2
        assert stats["hits"] == 3


# ---------------------------------------------------------------------------
# executor tiles= argument
# ---------------------------------------------------------------------------

class TestExecutorTilesArgument:
    def test_rejects_unknown_spellings_and_illegal_pairs(self, rng):
        w = _weight(rng)
        with pytest.raises(ValueError, match="tiles mode"):
            CompiledSpectralConv1D(w, 4, tiles="fastest")
        with pytest.raises(ValueError, match="signal_tile"):
            CompiledSpectralConv1D(w, 4, tiles=(0, 8))
        with pytest.raises(ValueError, match="whole multiple"):
            CompiledSpectralConv1D(w, 4, tiles=(16, 12))
        with pytest.raises(ValueError, match="whole multiple"):
            CompiledSpectralConv1D(w, 4, tiles=(16, 4))  # below k_tb
        with pytest.raises(ValueError, match="accumulation order"):
            CompiledSpectralConv1D(w, 4, symmetric=True, tiles=(16, 16))
        with pytest.raises(ValueError):
            compile_spectral_conv(w, (4, 4), tiles=(16, 12))

    def test_symmetric_accepts_untiled_and_batch_tiles(self, rng):
        w = _weight(rng)
        CompiledSpectralConv1D(w, 4, symmetric=True, tiles=(0, 8))
        CompiledSpectralConv2D(w, 4, 4, symmetric=True, tiles=(7, 8))

    def test_staging_cached_per_tiles(self, rng):
        w = _weight(rng)
        conv = CompiledSpectralConv1D(w, 8, tiles=(4, 8))
        x = rng.standard_normal((6, 8, 16)).astype(np.float32)
        conv(x)
        conv(x)
        assert len(conv._staged) == 1

    def test_resolve_tiles_default_and_explicit(self, rng):
        w = _weight(rng)
        assert CompiledSpectralConv1D(w, 8).resolve_tiles(32, 32) == \
            Tiles(16, 8)
        assert CompiledSpectralConv1D(
            w, 8, symmetric=True
        ).resolve_tiles(32, 32) == Tiles(0, 8)
        assert CompiledSpectralConv1D(
            w, 8, tiles=(64, 16)
        ).resolve_tiles(32, 32) == Tiles(64, 16)
        assert CompiledSpectralConv2D(w, 4, 8).resolve_tiles(
            4, (16, 32)
        ) == Tiles(16, 8)

    def test_auto_uses_default_tuner_when_none_given(self, tmp_path,
                                                     monkeypatch, rng):
        from repro.core import autotune

        monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "t.json"))
        monkeypatch.setattr(autotune, "_default_tuner", None)
        w = _weight(rng)
        conv = CompiledSpectralConv1D(w, 8, tiles="auto")
        x = rng.standard_normal((8, 8, 16)).astype(np.float32)
        ref = CompiledSpectralConv1D(w, 8)(x)
        assert np.array_equal(conv(x), ref)
        assert autotune.default_tuner().stats()["misses"] == 1
        assert (tmp_path / "t.json").exists()


# ---------------------------------------------------------------------------
# session integration
# ---------------------------------------------------------------------------

class TestSessionAutotune:
    def test_spelling_validation(self):
        api.Session(autotune="on").close()
        api.Session(autotune="off").close()
        with pytest.raises(ValueError, match="autotune"):
            api.Session(autotune="sometimes")

    def test_default_off_and_stats_shape(self, rng):
        with api.Session() as s:
            st = s.stats()["autotune"]
            assert st == {"enabled": False, "hits": 0, "misses": 0,
                          "entries": 0}

    def test_autotuned_serving_bit_identical(self, tmp_path, monkeypatch,
                                             rng):
        monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "t.json"))
        w = _weight(rng)
        x = (rng.standard_normal((8, 8, 32))
             + 1j * rng.standard_normal((8, 8, 32))).astype(np.complex64)
        with api.Session(autotune=True) as tuned, api.Session() as plain:
            a = tuned.infer((w, 8), x)
            b = plain.infer((w, 8), x)
            assert np.array_equal(a, b)
            st = tuned.stats()["autotune"]
            assert st["enabled"] and st["misses"] == 1

    def test_clear_all_caches_evicts_tune_memo(self, tmp_path,
                                               monkeypatch, rng):
        monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "t.json"))
        w = _weight(rng)
        x = np.ones((4, 8, 16), np.float32)
        with api.Session(autotune=True) as s:
            s.infer((w, 8), x)
            assert s.stats()["autotune"]["entries"] == 1
            s.clear_all_caches()
            assert s.stats()["autotune"]["entries"] == 0
            # the persistent store still has the winner: next call hits
            hits_before = s.stats()["autotune"]["hits"]
            s.infer((w, 8), x)
            assert s.stats()["autotune"]["hits"] == hits_before + 1
            assert s.stats()["autotune"]["misses"] == 1

    def test_warmup_pretunes_problem_geometries(self, tmp_path,
                                                monkeypatch, rng):
        monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "t.json"))
        prob = FNO1DProblem(batch=16, hidden=8, dim_x=32, modes=16)
        with api.Session(autotune=True) as s:
            info = s.warmup([prob])
            # one bucket (<=32), fused + symmetric (modes == dim_x/2)
            assert info["tuned"] == 2
            misses = s.stats()["autotune"]["misses"]
            assert misses == 2
            # serving the warmed geometry — at the problem batch AND at
            # smaller micro-batch sizes — never searches inline
            w = _weight(rng)
            for batch in (16, 3):
                s.infer((w, 16), np.ones((batch, 8, 32), np.float32))
            s.infer((w, 16, True), np.ones((4, 8, 32), np.float32))
            assert s.stats()["autotune"]["misses"] == misses

    def test_warmup_without_autotune_reports_zero(self):
        with api.Session() as s:
            assert s.warmup([FNO1DProblem(batch=8, hidden=8, dim_x=32,
                                          modes=16)])["tuned"] == 0

    def test_plan_compile_executor_follows_session_autotune(
            self, tmp_path, monkeypatch, rng):
        monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "t.json"))
        prob = FNO1DProblem(batch=8, hidden=8, dim_x=32, modes=8)
        w = _weight(rng)
        with api.Session(autotune=True) as s:
            conv = s.plan(prob).compile_executor(w)
            assert conv.tiles == "auto"
            x = np.ones((8, 8, 32), np.float32)
            ref = CompiledSpectralConv1D(w, 8)(x)
            assert np.array_equal(conv(x), ref)
            assert s.stats()["autotune"]["misses"] == 1
        with api.Session() as s:
            assert s.plan(prob).compile_executor(w).tiles == "default"
            assert s.plan(prob).compile_executor(
                w, tiles=(4, 8)
            ).tiles == Tiles(4, 8)


# ---------------------------------------------------------------------------
# the CLI
# ---------------------------------------------------------------------------

class TestTuneCLI:
    def test_tune_quick_json(self, tmp_path, monkeypatch, capsys):
        from repro.__main__ import main

        monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "t.json"))
        assert main(["tune", "--grid", "quick", "--backend", "numpy",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "numpy"
        assert payload["store"] == str(tmp_path / "t.json")
        assert payload["tuner"]["misses"] == len(payload["results"])
        for row in payload["results"]:
            assert row["outputs_equal"] is True
            st, ktb = row["tiles"]
            assert st >= 0 and ktb >= 8
        assert (tmp_path / "t.json").exists()

    def test_tune_rejects_unavailable_backend(self, tmp_path, monkeypatch,
                                              capsys):
        from repro.__main__ import main
        from repro.fft import _ckernels

        monkeypatch.setenv("REPRO_TUNE_CACHE", str(tmp_path / "t.json"))
        monkeypatch.setitem(_ckernels._state, "kernels", None)
        monkeypatch.setitem(_ckernels._state, "tried", True)
        assert main(["tune", "--backend", "ckernels"]) == 2
        assert "error" in capsys.readouterr().err
