"""Tests for ``repro.tools.locks``: the runtime lock-order detector.

The centrepiece reconstructs the PR 8 ``default_session``
double-checked-locking race *shape* — two threads taking the same pair
of locks in opposite orders — and asserts the recorder catches it as
both a cycle and a forbidden edge.  The integration test instruments a
real ``ServePool`` and drives mixed traffic through it, asserting the
pool's documented order (``_lock`` before ``_stats_lock``) actually
holds at runtime, not just in the static lint pass.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.tools.locks import (
    POOL_LOCK_ORDER,
    InstrumentedLock,
    LockOrderError,
    LockOrderRecorder,
    instrument_pool,
)

RNG = np.random.default_rng(20260808)


class TestRecorder:
    def test_ordered_acquisition_records_one_edge(self):
        rec = LockOrderRecorder()
        a = rec.wrap(threading.Lock(), "a")
        b = rec.wrap(threading.Lock(), "b")
        with a:
            with b:
                pass
        assert rec.edges() == {("a", "b")}
        assert rec.has_edge("a", "b")
        assert not rec.has_edge("b", "a")
        assert rec.cycles() == []
        rec.assert_clean()

    def test_pr8_race_shape_detected(self):
        """Two threads, same lock pair, opposite orders — the PR 8
        ``default_session`` deadlock shape.  Each thread runs alone (no
        actual contention) yet the graph still convicts the pair."""
        rec = LockOrderRecorder(forbidden=[("b", "a")])
        a = rec.wrap(threading.RLock(), "a")
        b = rec.wrap(threading.Lock(), "b")

        def forward():
            with a:
                with b:
                    pass

        def inverted():
            with b:
                with a:
                    pass

        for target in (forward, inverted):
            t = threading.Thread(target=target)
            t.start()
            t.join()

        assert rec.has_edge("a", "b") and rec.has_edge("b", "a")
        cycles = rec.cycles()
        assert len(cycles) == 1
        assert set(cycles[0]) == {"a", "b"}
        problems = rec.violations()
        assert any("cycle" in p for p in problems)
        assert any("forbidden edge" in p for p in problems)
        with pytest.raises(LockOrderError, match="acquisition cycle"):
            rec.assert_clean()

    def test_forbidden_edge_fails_without_a_cycle(self):
        """An order inversion is a violation even before a compliant
        thread ever races it — no cycle required."""
        rec = LockOrderRecorder(forbidden=[("b", "a")])
        a = rec.wrap(threading.Lock(), "a")
        b = rec.wrap(threading.Lock(), "b")
        with b:
            with a:
                pass
        assert rec.cycles() == []
        with pytest.raises(LockOrderError, match="forbidden edge"):
            rec.assert_clean()

    def test_rlock_reentry_is_not_an_edge(self):
        rec = LockOrderRecorder()
        a = rec.wrap(threading.RLock(), "a")
        with a:
            with a:  # re-entry: held set already contains "a"
                pass
        assert rec.edges() == set()
        rec.assert_clean()

    def test_three_lock_cycle_detected(self):
        rec = LockOrderRecorder()
        locks = {name: rec.wrap(threading.Lock(), name) for name in "abc"}
        for first, second in (("a", "b"), ("b", "c"), ("c", "a")):
            with locks[first]:
                with locks[second]:
                    pass
        cycles = rec.cycles()
        assert len(cycles) == 1
        assert set(cycles[0]) == {"a", "b", "c"}

    def test_per_thread_held_stacks(self):
        """Locks held by *different* threads never form an edge — only
        nesting within one thread does."""
        rec = LockOrderRecorder()
        a = rec.wrap(threading.Lock(), "a")
        b = rec.wrap(threading.Lock(), "b")
        a_held = threading.Event()
        release_a = threading.Event()

        def holder():
            with a:
                a_held.set()
                release_a.wait(5)

        t = threading.Thread(target=holder)
        t.start()
        assert a_held.wait(5)
        with b:  # main thread holds nothing else: no edge
            pass
        release_a.set()
        t.join()
        assert rec.edges() == set()

    def test_wrapper_preserves_lock_semantics(self):
        rec = LockOrderRecorder()
        lock = rec.wrap(threading.Lock(), "a")
        assert lock.acquire()
        assert lock.locked()
        assert not lock.acquire(blocking=False)  # held: non-blocking fails
        lock.release()
        assert not lock.locked()
        assert "InstrumentedLock" in repr(lock)


class TestInstrumentPool:
    def test_instrument_swaps_and_is_idempotent(self):
        class FakePool:
            def __init__(self):
                self._lock = threading.RLock()
                self._stats_lock = threading.Lock()

        pool = FakePool()
        rec = instrument_pool(pool)
        assert isinstance(pool._lock, InstrumentedLock)
        assert isinstance(pool._stats_lock, InstrumentedLock)
        first = pool._lock
        again = instrument_pool(pool, rec)
        assert again is rec
        assert pool._lock is first  # not double-wrapped

    def test_serve_pool_traffic_respects_documented_order(self):
        """Drive real mixed traffic through an instrumented ServePool:
        the documented order must hold — no cycles, and never
        ``_stats_lock`` -> ``_lock``."""
        from repro.api import ServePool
        from repro.api.session import SpectralModel

        hidden = 4
        w = ((RNG.standard_normal((hidden, hidden))
              + 1j * RNG.standard_normal((hidden, hidden)))
             / hidden).astype(np.complex64)
        requests = []
        for i in range(24):
            n = (32, 64)[i % 2]
            x = (RNG.standard_normal((2, hidden, n))
                 + 1j * RNG.standard_normal((2, hidden, n))
                 ).astype(np.complex64)
            requests.append((SpectralModel(w, 8), x))

        with ServePool(workers=2, backend="numpy") as pool:
            rec = instrument_pool(pool)
            pool.infer_many(requests)
            pool.stats()
        # The instrumented locks carried real traffic...
        assert rec.total_acquisitions() > 0
        # ...and the order held: no inversion edge, no cycle.  (The pool
        # in fact never nests the two — an empty edge set — which is
        # the strongest form of compliance.)
        inverted = POOL_LOCK_ORDER[::-1]
        assert not rec.has_edge(*inverted)
        rec.assert_clean()
