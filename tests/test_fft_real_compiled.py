"""Property tests for the compiled packed-real R2C/C2R plan family.

The contract mirrors :mod:`tests.test_fft_compiled`: results are
bit-identical *within the plan family* (across the C-kernel and NumPy
executor backends, and across repeated executions through one cached
plan), match ``numpy.fft.rfft/irfft`` to working precision, and match
the legacy slice-the-full-spectrum oracle (:mod:`repro.fft.legacy`) to
tolerance — across dtypes, axes, non-contiguous layouts and batch
shapes.  Plan-cache semantics (same key -> same object, workspace reuse
under interleaved 1-D/2-D calls) are held to the same bar as the C2C
plans.
"""

import numpy as np
import pytest

from repro.fft import compiled, legacy
from repro.fft._ckernels import kernels_available
from repro.fft.real import irfft, rfft

REAL_DTYPES = (np.float32, np.float64)

BACKENDS = ["ckernels", "numpy"] if kernels_available() else ["numpy"]

#: absolute tolerance per working precision (vs numpy / the legacy oracle;
#: the packed recombination reassociates, so this is not bitwise).
ATOL = {np.dtype(np.float32): 1e-3, np.dtype(np.float64): 1e-10,
        np.dtype(np.complex64): 1e-3, np.dtype(np.complex128): 1e-10}


@pytest.fixture(params=BACKENDS)
def backend(request, monkeypatch):
    """Run a test under the C kernels and under the NumPy fallback."""
    if request.param == "numpy":
        from repro.fft import _ckernels

        monkeypatch.setitem(_ckernels._state, "kernels", None)
        monkeypatch.setitem(_ckernels._state, "tried", True)
        compiled.clear_fft_plan_cache()
    yield request.param
    compiled.clear_fft_plan_cache()


def _real_data(shape, dtype, rng, contiguity="C"):
    x = rng.standard_normal(shape).astype(dtype)
    if contiguity == "sliced":  # non-contiguous rows
        x = np.repeat(x, 2, axis=0)[::2]
    elif contiguity == "F":
        x = np.asfortranarray(x)
    return x


def _half_spectrum(shape_lead, n, dtype, rng, valid=True):
    """A random half spectrum with the given leading (batch) shape."""
    bins = n // 2 + 1
    xk = (rng.standard_normal((*shape_lead, bins))
          + 1j * rng.standard_normal((*shape_lead, bins))).astype(dtype)
    if valid:  # DC and Nyquist bins of a real signal are real
        xk[..., 0] = xk[..., 0].real
        xk[..., -1] = xk[..., -1].real
    return xk


def _bit_equal(a, b):
    a = np.ascontiguousarray(a)
    b = np.ascontiguousarray(b)
    return a.dtype == b.dtype and np.array_equal(
        a.view(a.real.dtype), b.view(b.real.dtype)
    )


# ---------------------------------------------------------------------------
# round trips
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("dtype", REAL_DTYPES)
@pytest.mark.parametrize("n", [1, 2, 4, 16, 128, 256])
def test_roundtrip_identity(backend, dtype, n):
    rng = np.random.default_rng(10)
    x = _real_data((3, n), dtype, rng)
    back = irfft(rfft(x), n)
    assert back.dtype == x.dtype
    np.testing.assert_allclose(back, x, atol=ATOL[x.dtype] * max(n, 1))


@pytest.mark.parametrize("shape,axis", [((2, 4, 32), 1), ((16, 5), 0),
                                        ((4, 64), -1), ((2, 8, 3), -2)])
def test_roundtrip_any_axis(backend, shape, axis):
    rng = np.random.default_rng(11)
    x = _real_data(shape, np.float64, rng)
    n = x.shape[axis]
    back = irfft(rfft(x, axis=axis), n, axis=axis)
    np.testing.assert_allclose(back, x, atol=1e-10)


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_roundtrip_randomized(backend, seed):
    """Seeded randomized round-trips across random shapes/axes/dtypes."""
    rng = np.random.default_rng(1000 + seed)
    n = 2 ** int(rng.integers(0, 9))
    lead = tuple(int(rng.integers(1, 5)) for _ in range(int(rng.integers(0, 3))))
    dtype = [np.float32, np.float64][seed % 2]
    axis = int(rng.integers(0, len(lead) + 1))
    shape = list(lead)
    shape.insert(axis, n)
    x = _real_data(tuple(shape), dtype, rng)
    back = irfft(rfft(x, axis=axis), n, axis=axis)
    np.testing.assert_allclose(back, x, atol=ATOL[x.dtype] * max(n, 1))


# ---------------------------------------------------------------------------
# equality vs numpy.fft and the legacy full-C2C oracle
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("dtype", REAL_DTYPES)
@pytest.mark.parametrize("n", [2, 8, 64, 256])
def test_rfft_matches_numpy(backend, dtype, n):
    rng = np.random.default_rng(12)
    x = _real_data((3, n), dtype, rng)
    np.testing.assert_allclose(
        rfft(x), np.fft.rfft(x.astype(np.float64)),
        atol=ATOL[np.dtype(dtype)] * n,
    )


@pytest.mark.parametrize("dtype", REAL_DTYPES)
@pytest.mark.parametrize("n", [2, 8, 64, 256])
def test_rfft_matches_legacy_oracle(backend, dtype, n):
    rng = np.random.default_rng(13)
    x = _real_data((4, n), dtype, rng)
    np.testing.assert_allclose(
        rfft(x), legacy.rfft(x), atol=ATOL[np.dtype(dtype)] * n
    )


@pytest.mark.parametrize("dtype", (np.complex64, np.complex128))
@pytest.mark.parametrize("n", [2, 8, 64, 256])
def test_irfft_matches_numpy(backend, dtype, n):
    rng = np.random.default_rng(14)
    xk = _half_spectrum((3,), n, dtype, rng)
    np.testing.assert_allclose(
        irfft(xk, n), np.fft.irfft(xk.astype(np.complex128), n),
        atol=ATOL[np.dtype(dtype)] * n,
    )


@pytest.mark.parametrize("valid", [True, False])
@pytest.mark.parametrize("n", [4, 32, 128])
def test_irfft_matches_legacy_oracle(backend, valid, n):
    """Agreement with the seed path even for *invalid* half spectra
    (complex DC/Nyquist bins, whose imaginary parts both paths drop)."""
    rng = np.random.default_rng(15)
    xk = _half_spectrum((2, 3), n, np.complex128, rng, valid=valid)
    np.testing.assert_allclose(
        irfft(xk, n), legacy.irfft(xk, n), atol=1e-10 * n
    )


@pytest.mark.parametrize("axis", [0, 1, -1, -2])
def test_rfft_irfft_leading_and_negative_axes(backend, axis):
    rng = np.random.default_rng(16)
    x = _real_data((16, 4, 16), np.float64, rng)
    n = x.shape[axis]
    got = rfft(x, axis=axis)
    assert got.flags.c_contiguous  # the legacy path's guarantee
    np.testing.assert_allclose(got, np.fft.rfft(x, axis=axis), atol=1e-10)
    xk = np.fft.rfft(x, axis=axis)
    np.testing.assert_allclose(
        irfft(xk, n, axis=axis), np.fft.irfft(xk, n, axis=axis), atol=1e-10
    )


@pytest.mark.parametrize("dtype", REAL_DTYPES)
@pytest.mark.parametrize("contiguity", ["sliced", "F"])
def test_rfft_non_contiguous_inputs(backend, dtype, contiguity):
    rng = np.random.default_rng(17)
    x = _real_data((6, 32), dtype, rng, contiguity)
    for axis in (-1, 0):
        if not compiled._is_power_of_two(x.shape[axis]):
            continue
        np.testing.assert_allclose(
            rfft(x, axis=axis),
            np.fft.rfft(x.astype(np.float64), axis=axis),
            atol=ATOL[np.dtype(dtype)] * x.shape[axis],
        )


@pytest.mark.parametrize("contiguity", ["sliced", "F"])
def test_irfft_non_contiguous_inputs(backend, contiguity):
    rng = np.random.default_rng(18)
    xk = _half_spectrum((6,), 32, np.complex128, rng)
    if contiguity == "sliced":
        xk = np.repeat(xk, 2, axis=0)[::2]
    else:
        xk = np.asfortranarray(xk)
    np.testing.assert_allclose(
        irfft(xk, 32), np.fft.irfft(xk, 32), atol=1e-10
    )


@pytest.mark.parametrize("shape,axis", [((8,), 0), ((2, 3, 4, 16), -1),
                                        ((1, 64), -1), ((5, 2, 8), 2)])
def test_batch_shapes(backend, shape, axis):
    rng = np.random.default_rng(19)
    x = _real_data(shape, np.float64, rng)
    np.testing.assert_allclose(
        rfft(x, axis=axis), np.fft.rfft(x, axis=axis), atol=1e-10
    )


# ---------------------------------------------------------------------------
# bit-identity within the plan family
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("dtype", REAL_DTYPES)
def test_repeated_executions_bit_identical(backend, dtype):
    """One cached plan, reused workspaces -> identical bytes every call."""
    rng = np.random.default_rng(20)
    x = _real_data((5, 64), dtype, rng)
    first = rfft(x)
    for _ in range(3):
        assert _bit_equal(rfft(x), first)
    xk = _half_spectrum((5,), 64, np.complex128, rng)
    firsti = irfft(xk, 64)
    for _ in range(3):
        assert _bit_equal(irfft(xk, 64), firsti)


@pytest.mark.skipif(not kernels_available(), reason="needs the C kernels")
@pytest.mark.parametrize("dtype", REAL_DTYPES)
def test_backends_bit_identical(dtype, monkeypatch):
    """C-kernel and NumPy-fallback paths produce the same bytes: the
    recombination is shared and the half-length sub-transform is held to
    the compiled layer's bit-identity contract."""
    from repro.fft import _ckernels

    rng = np.random.default_rng(21)
    x = _real_data((4, 128), dtype, rng)
    xk = _half_spectrum((4,), 128,
                        np.complex64 if dtype == np.float32 else np.complex128,
                        rng)
    compiled.clear_fft_plan_cache()
    with_kernels = (rfft(x), irfft(xk, 128))
    monkeypatch.setitem(_ckernels._state, "kernels", None)
    monkeypatch.setitem(_ckernels._state, "tried", True)
    compiled.clear_fft_plan_cache()
    without = (rfft(x), irfft(xk, 128))
    assert _bit_equal(with_kernels[0], without[0])
    assert _bit_equal(with_kernels[1], without[1])
    compiled.clear_fft_plan_cache()


# ---------------------------------------------------------------------------
# plan-cache semantics
# ---------------------------------------------------------------------------

def test_same_key_returns_same_plan_object():
    p1 = compiled.get_rfft_plan(128, np.float32)
    assert compiled.get_rfft_plan(128, np.float32) is p1
    # dtype normalisation: float32 and complex64 share one plan
    assert compiled.get_rfft_plan(128, np.complex64) is p1
    # direction and precision are distinct keys
    assert compiled.get_irfft_plan(128, np.float32) is not p1
    assert compiled.get_rfft_plan(128, np.float64) is not p1
    assert compiled.get_rfft_plan(64, np.float32) is not p1
    q1 = compiled.get_irfft_plan(64, np.complex64)
    assert compiled.get_irfft_plan(64, np.float32) is q1


def test_plans_share_the_half_length_c2c_plan():
    """The packed-real trick runs through the cached C2C machinery: the
    sub-transform *is* the cached half-length plan object."""
    p = compiled.get_rfft_plan(128, np.float32)
    assert p._sub is compiled.get_fft_plan(64, np.complex64, inverse=False)
    q = compiled.get_irfft_plan(128, np.float32)
    assert q._sub is compiled.get_fft_plan(64, np.complex64, inverse=True)


def test_clear_plan_cache_resets_objects():
    p1 = compiled.get_rfft_plan(32, np.float32)
    compiled.clear_fft_plan_cache()
    assert compiled.get_rfft_plan(32, np.float32) is not p1


def test_cache_info_reports_rfft_plans():
    compiled.clear_fft_plan_cache()
    compiled.get_rfft_plan(16, np.float32)
    compiled.get_irfft_plan(16, np.float32)
    info = compiled.fft_plan_cache_info()
    assert len(info) == 3
    assert info[2].currsize == 2


def test_plan_tables_are_readonly_and_precast():
    p = compiled.get_rfft_plan(32, np.float32)
    assert p._wm.dtype == np.complex64
    assert not p._wm.flags.writeable
    q = compiled.get_irfft_plan(32, np.float64)
    assert q._wj.dtype == np.complex128
    assert not q._wj.flags.writeable


def test_workspace_reuse_interleaved_1d_2d(backend):
    """Interleaved 1-D/2-D (and growing/shrinking batch) calls through
    the same cached plans must not corrupt each other's workspaces."""
    rng = np.random.default_rng(22)
    xs = [
        _real_data((3, 32), np.float64, rng),
        _real_data((2, 5, 32), np.float64, rng),   # 2-D batch, same length
        _real_data((1, 32), np.float64, rng),
        _real_data((4, 2, 32), np.float64, rng),
    ]
    expected = [np.fft.rfft(x, axis=-1) for x in xs]
    first = [rfft(x, axis=-1) for x in xs]
    # reversed order re-runs over the warm, grown workspaces
    second = [rfft(x, axis=-1) for x in reversed(xs)][::-1]
    for e, g1, g2 in zip(expected, first, second):
        np.testing.assert_allclose(g1, e, atol=1e-10)
        assert _bit_equal(g1, g2)
    ks = [np.fft.rfft(x, axis=-1) for x in xs]
    iexpected = [np.fft.irfft(k, 32, axis=-1) for k in ks]
    ifirst = [irfft(k, 32, axis=-1) for k in ks]
    isecond = [irfft(k, 32, axis=-1) for k in reversed(ks)][::-1]
    for e, g1, g2 in zip(iexpected, ifirst, isecond):
        np.testing.assert_allclose(g1, e, atol=1e-10)
        assert _bit_equal(g1, g2)


def test_execution_does_not_mutate_input(backend):
    rng = np.random.default_rng(23)
    x = _real_data((4, 16), np.float64, rng)
    kept = x.copy()
    rfft(x)
    assert np.array_equal(x, kept)
    xk = _half_spectrum((4,), 16, np.complex128, rng)
    kept_k = xk.copy()
    irfft(xk, 16)
    assert np.array_equal(xk, kept_k)


# ---------------------------------------------------------------------------
# dtype policy (regression: no silent complex128 promotion)
# ---------------------------------------------------------------------------

def test_irfft_complex64_in_float32_out():
    rng = np.random.default_rng(24)
    xk = np.fft.rfft(rng.standard_normal((2, 16))).astype(np.complex64)
    out = irfft(xk, 16)
    assert out.dtype == np.float32


def test_irfft_real_valued_half_spectrum_keeps_precision():
    """The seed promoted real-valued half spectra to complex128 no matter
    the input precision; the compiled path follows the dtype policy."""
    xk32 = np.ones((2, 9), dtype=np.float32)
    assert irfft(xk32, 16).dtype == np.float32
    xk64 = np.ones((2, 9), dtype=np.float64)
    assert irfft(xk64, 16).dtype == np.float64


def test_irfft_complex128_in_float64_out():
    rng = np.random.default_rng(25)
    xk = np.fft.rfft(rng.standard_normal((2, 16)))
    assert irfft(xk, 16).dtype == np.float64


def test_rfft_output_dtypes():
    rng = np.random.default_rng(26)
    assert rfft(rng.standard_normal((2, 8)).astype(np.float32)).dtype \
        == np.complex64
    assert rfft(rng.standard_normal((2, 8))).dtype == np.complex128
    # integer input follows the "everything else is double" rule
    assert rfft(np.arange(8).reshape(1, 8)).dtype == np.complex128


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------

def test_rfft_rejects_complex_input():
    with pytest.raises(ValueError):
        rfft(np.zeros((2, 8), dtype=complex))


def test_rfft_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        rfft(np.zeros((2, 12)))


def test_irfft_rejects_wrong_bin_count():
    with pytest.raises(ValueError):
        irfft(np.zeros((2, 8), dtype=complex), 32)
    with pytest.raises(ValueError):
        irfft(np.zeros((2, 9), dtype=complex), 24)  # not a power of two


def test_plan_execute_validates_geometry():
    p = compiled.get_rfft_plan(16, np.float32)
    with pytest.raises(ValueError):
        p.execute(np.zeros((2, 8), dtype=np.float32))  # wrong length
    with pytest.raises(ValueError):
        p.execute(np.zeros((2, 16), dtype=np.float64))  # wrong precision
    q = compiled.get_irfft_plan(16, np.float32)
    with pytest.raises(ValueError):
        q.execute(np.zeros((2, 16), dtype=np.complex64))  # wrong bin count
    with pytest.raises(ValueError):
        q.execute(np.zeros((2, 9), dtype=np.complex128))  # wrong precision
