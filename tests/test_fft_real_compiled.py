"""Property tests for the compiled packed-real R2C/C2R plan family.

The contract mirrors :mod:`tests.test_fft_compiled`: results are
bit-identical *within the plan family* (across the C-kernel and NumPy
executor backends, and across repeated executions through one cached
plan), match ``numpy.fft.rfft/irfft`` to working precision, and match
the legacy slice-the-full-spectrum oracle (:mod:`repro.fft.legacy`) to
tolerance — across dtypes, axes, non-contiguous layouts and batch
shapes.  Plan-cache semantics (same key -> same object, workspace reuse
under interleaved 1-D/2-D calls) are held to the same bar as the C2C
plans.
"""

import numpy as np
import pytest

from repro.fft import compiled, legacy
from repro.fft._ckernels import kernels_available
from repro.fft.real import irfft, padded_irfft, rfft, truncated_rfft

REAL_DTYPES = (np.float32, np.float64)

BACKENDS = ["ckernels", "numpy"] if kernels_available() else ["numpy"]

#: absolute tolerance per working precision (vs numpy / the legacy oracle;
#: the packed recombination reassociates, so this is not bitwise).
ATOL = {np.dtype(np.float32): 1e-3, np.dtype(np.float64): 1e-10,
        np.dtype(np.complex64): 1e-3, np.dtype(np.complex128): 1e-10}


@pytest.fixture(params=BACKENDS)
def backend(request, monkeypatch):
    """Run a test under the C kernels and under the NumPy fallback."""
    if request.param == "numpy":
        from repro.fft import _ckernels

        monkeypatch.setitem(_ckernels._state, "kernels", None)
        monkeypatch.setitem(_ckernels._state, "tried", True)
        compiled.clear_fft_plan_cache()
    yield request.param
    compiled.clear_fft_plan_cache()


def _real_data(shape, dtype, rng, contiguity="C"):
    x = rng.standard_normal(shape).astype(dtype)
    if contiguity == "sliced":  # non-contiguous rows
        x = np.repeat(x, 2, axis=0)[::2]
    elif contiguity == "F":
        x = np.asfortranarray(x)
    return x


def _half_spectrum(shape_lead, n, dtype, rng, valid=True):
    """A random half spectrum with the given leading (batch) shape."""
    bins = n // 2 + 1
    xk = (rng.standard_normal((*shape_lead, bins))
          + 1j * rng.standard_normal((*shape_lead, bins))).astype(dtype)
    if valid:  # DC and Nyquist bins of a real signal are real
        xk[..., 0] = xk[..., 0].real
        xk[..., -1] = xk[..., -1].real
    return xk


def _bit_equal(a, b):
    a = np.ascontiguousarray(a)
    b = np.ascontiguousarray(b)
    return a.dtype == b.dtype and np.array_equal(
        a.view(a.real.dtype), b.view(b.real.dtype)
    )


# ---------------------------------------------------------------------------
# round trips
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("dtype", REAL_DTYPES)
@pytest.mark.parametrize("n", [1, 2, 4, 16, 128, 256])
def test_roundtrip_identity(backend, dtype, n):
    rng = np.random.default_rng(10)
    x = _real_data((3, n), dtype, rng)
    back = irfft(rfft(x), n)
    assert back.dtype == x.dtype
    np.testing.assert_allclose(back, x, atol=ATOL[x.dtype] * max(n, 1))


@pytest.mark.parametrize("shape,axis", [((2, 4, 32), 1), ((16, 5), 0),
                                        ((4, 64), -1), ((2, 8, 3), -2)])
def test_roundtrip_any_axis(backend, shape, axis):
    rng = np.random.default_rng(11)
    x = _real_data(shape, np.float64, rng)
    n = x.shape[axis]
    back = irfft(rfft(x, axis=axis), n, axis=axis)
    np.testing.assert_allclose(back, x, atol=1e-10)


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_roundtrip_randomized(backend, seed):
    """Seeded randomized round-trips across random shapes/axes/dtypes."""
    rng = np.random.default_rng(1000 + seed)
    n = 2 ** int(rng.integers(0, 9))
    lead = tuple(int(rng.integers(1, 5)) for _ in range(int(rng.integers(0, 3))))
    dtype = [np.float32, np.float64][seed % 2]
    axis = int(rng.integers(0, len(lead) + 1))
    shape = list(lead)
    shape.insert(axis, n)
    x = _real_data(tuple(shape), dtype, rng)
    back = irfft(rfft(x, axis=axis), n, axis=axis)
    np.testing.assert_allclose(back, x, atol=ATOL[x.dtype] * max(n, 1))


# ---------------------------------------------------------------------------
# equality vs numpy.fft and the legacy full-C2C oracle
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("dtype", REAL_DTYPES)
@pytest.mark.parametrize("n", [2, 8, 64, 256])
def test_rfft_matches_numpy(backend, dtype, n):
    rng = np.random.default_rng(12)
    x = _real_data((3, n), dtype, rng)
    np.testing.assert_allclose(
        rfft(x), np.fft.rfft(x.astype(np.float64)),
        atol=ATOL[np.dtype(dtype)] * n,
    )


@pytest.mark.parametrize("dtype", REAL_DTYPES)
@pytest.mark.parametrize("n", [2, 8, 64, 256])
def test_rfft_matches_legacy_oracle(backend, dtype, n):
    rng = np.random.default_rng(13)
    x = _real_data((4, n), dtype, rng)
    np.testing.assert_allclose(
        rfft(x), legacy.rfft(x), atol=ATOL[np.dtype(dtype)] * n
    )


@pytest.mark.parametrize("dtype", (np.complex64, np.complex128))
@pytest.mark.parametrize("n", [2, 8, 64, 256])
def test_irfft_matches_numpy(backend, dtype, n):
    rng = np.random.default_rng(14)
    xk = _half_spectrum((3,), n, dtype, rng)
    np.testing.assert_allclose(
        irfft(xk, n), np.fft.irfft(xk.astype(np.complex128), n),
        atol=ATOL[np.dtype(dtype)] * n,
    )


@pytest.mark.parametrize("valid", [True, False])
@pytest.mark.parametrize("n", [4, 32, 128])
def test_irfft_matches_legacy_oracle(backend, valid, n):
    """Agreement with the seed path even for *invalid* half spectra
    (complex DC/Nyquist bins, whose imaginary parts both paths drop)."""
    rng = np.random.default_rng(15)
    xk = _half_spectrum((2, 3), n, np.complex128, rng, valid=valid)
    np.testing.assert_allclose(
        irfft(xk, n), legacy.irfft(xk, n), atol=1e-10 * n
    )


@pytest.mark.parametrize("axis", [0, 1, -1, -2])
def test_rfft_irfft_leading_and_negative_axes(backend, axis):
    rng = np.random.default_rng(16)
    x = _real_data((16, 4, 16), np.float64, rng)
    n = x.shape[axis]
    got = rfft(x, axis=axis)
    assert got.flags.c_contiguous  # the legacy path's guarantee
    np.testing.assert_allclose(got, np.fft.rfft(x, axis=axis), atol=1e-10)
    xk = np.fft.rfft(x, axis=axis)
    np.testing.assert_allclose(
        irfft(xk, n, axis=axis), np.fft.irfft(xk, n, axis=axis), atol=1e-10
    )


@pytest.mark.parametrize("dtype", REAL_DTYPES)
@pytest.mark.parametrize("contiguity", ["sliced", "F"])
def test_rfft_non_contiguous_inputs(backend, dtype, contiguity):
    rng = np.random.default_rng(17)
    x = _real_data((6, 32), dtype, rng, contiguity)
    for axis in (-1, 0):
        if not compiled._is_power_of_two(x.shape[axis]):
            continue
        np.testing.assert_allclose(
            rfft(x, axis=axis),
            np.fft.rfft(x.astype(np.float64), axis=axis),
            atol=ATOL[np.dtype(dtype)] * x.shape[axis],
        )


@pytest.mark.parametrize("contiguity", ["sliced", "F"])
def test_irfft_non_contiguous_inputs(backend, contiguity):
    rng = np.random.default_rng(18)
    xk = _half_spectrum((6,), 32, np.complex128, rng)
    if contiguity == "sliced":
        xk = np.repeat(xk, 2, axis=0)[::2]
    else:
        xk = np.asfortranarray(xk)
    np.testing.assert_allclose(
        irfft(xk, 32), np.fft.irfft(xk, 32), atol=1e-10
    )


@pytest.mark.parametrize("shape,axis", [((8,), 0), ((2, 3, 4, 16), -1),
                                        ((1, 64), -1), ((5, 2, 8), 2)])
def test_batch_shapes(backend, shape, axis):
    rng = np.random.default_rng(19)
    x = _real_data(shape, np.float64, rng)
    np.testing.assert_allclose(
        rfft(x, axis=axis), np.fft.rfft(x, axis=axis), atol=1e-10
    )


# ---------------------------------------------------------------------------
# bit-identity within the plan family
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("dtype", REAL_DTYPES)
def test_repeated_executions_bit_identical(backend, dtype):
    """One cached plan, reused workspaces -> identical bytes every call."""
    rng = np.random.default_rng(20)
    x = _real_data((5, 64), dtype, rng)
    first = rfft(x)
    for _ in range(3):
        assert _bit_equal(rfft(x), first)
    xk = _half_spectrum((5,), 64, np.complex128, rng)
    firsti = irfft(xk, 64)
    for _ in range(3):
        assert _bit_equal(irfft(xk, 64), firsti)


@pytest.mark.skipif(not kernels_available(), reason="needs the C kernels")
@pytest.mark.parametrize("dtype", REAL_DTYPES)
def test_backends_bit_identical(dtype, monkeypatch):
    """C-kernel and NumPy-fallback paths produce the same bytes: the
    recombination is shared and the half-length sub-transform is held to
    the compiled layer's bit-identity contract."""
    from repro.fft import _ckernels

    rng = np.random.default_rng(21)
    x = _real_data((4, 128), dtype, rng)
    xk = _half_spectrum((4,), 128,
                        np.complex64 if dtype == np.float32 else np.complex128,
                        rng)
    compiled.clear_fft_plan_cache()
    with_kernels = (rfft(x), irfft(xk, 128))
    monkeypatch.setitem(_ckernels._state, "kernels", None)
    monkeypatch.setitem(_ckernels._state, "tried", True)
    compiled.clear_fft_plan_cache()
    without = (rfft(x), irfft(xk, 128))
    assert _bit_equal(with_kernels[0], without[0])
    assert _bit_equal(with_kernels[1], without[1])
    compiled.clear_fft_plan_cache()


# ---------------------------------------------------------------------------
# plan-cache semantics
# ---------------------------------------------------------------------------

def test_same_key_returns_same_plan_object():
    p1 = compiled.get_rfft_plan(128, np.float32)
    assert compiled.get_rfft_plan(128, np.float32) is p1
    # dtype normalisation: float32 and complex64 share one plan
    assert compiled.get_rfft_plan(128, np.complex64) is p1
    # direction and precision are distinct keys
    assert compiled.get_irfft_plan(128, np.float32) is not p1
    assert compiled.get_rfft_plan(128, np.float64) is not p1
    assert compiled.get_rfft_plan(64, np.float32) is not p1
    q1 = compiled.get_irfft_plan(64, np.complex64)
    assert compiled.get_irfft_plan(64, np.float32) is q1


def test_plans_share_the_half_length_c2c_plan():
    """The packed-real trick runs through the cached C2C machinery: the
    sub-transform *is* the cached half-length plan object."""
    p = compiled.get_rfft_plan(128, np.float32)
    assert p._sub is compiled.get_fft_plan(64, np.complex64, inverse=False)
    q = compiled.get_irfft_plan(128, np.float32)
    assert q._sub is compiled.get_fft_plan(64, np.complex64, inverse=True)


def test_clear_plan_cache_resets_objects():
    p1 = compiled.get_rfft_plan(32, np.float32)
    compiled.clear_fft_plan_cache()
    assert compiled.get_rfft_plan(32, np.float32) is not p1


def test_cache_info_reports_rfft_plans():
    compiled.clear_fft_plan_cache()
    compiled.get_rfft_plan(16, np.float32)
    compiled.get_irfft_plan(16, np.float32)
    info = compiled.fft_plan_cache_info()
    assert len(info) == 4  # fft, pruned, r2c/c2r, pruned r2c/c2r
    assert info[2].currsize == 2
    assert info[3].currsize == 0
    compiled.get_pruned_rfft_plan(16, 3, np.float32)
    compiled.get_pruned_irfft_plan(16, 3, np.float32)
    assert compiled.fft_plan_cache_info()[3].currsize == 2


def test_plan_tables_are_readonly_and_precast():
    p = compiled.get_rfft_plan(32, np.float32)
    assert p._wm.dtype == np.complex64
    assert not p._wm.flags.writeable
    q = compiled.get_irfft_plan(32, np.float64)
    assert q._wj.dtype == np.complex128
    assert not q._wj.flags.writeable


def test_workspace_reuse_interleaved_1d_2d(backend):
    """Interleaved 1-D/2-D (and growing/shrinking batch) calls through
    the same cached plans must not corrupt each other's workspaces."""
    rng = np.random.default_rng(22)
    xs = [
        _real_data((3, 32), np.float64, rng),
        _real_data((2, 5, 32), np.float64, rng),   # 2-D batch, same length
        _real_data((1, 32), np.float64, rng),
        _real_data((4, 2, 32), np.float64, rng),
    ]
    expected = [np.fft.rfft(x, axis=-1) for x in xs]
    first = [rfft(x, axis=-1) for x in xs]
    # reversed order re-runs over the warm, grown workspaces
    second = [rfft(x, axis=-1) for x in reversed(xs)][::-1]
    for e, g1, g2 in zip(expected, first, second):
        np.testing.assert_allclose(g1, e, atol=1e-10)
        assert _bit_equal(g1, g2)
    ks = [np.fft.rfft(x, axis=-1) for x in xs]
    iexpected = [np.fft.irfft(k, 32, axis=-1) for k in ks]
    ifirst = [irfft(k, 32, axis=-1) for k in ks]
    isecond = [irfft(k, 32, axis=-1) for k in reversed(ks)][::-1]
    for e, g1, g2 in zip(iexpected, ifirst, isecond):
        np.testing.assert_allclose(g1, e, atol=1e-10)
        assert _bit_equal(g1, g2)


def test_execution_does_not_mutate_input(backend):
    rng = np.random.default_rng(23)
    x = _real_data((4, 16), np.float64, rng)
    kept = x.copy()
    rfft(x)
    assert np.array_equal(x, kept)
    xk = _half_spectrum((4,), 16, np.complex128, rng)
    kept_k = xk.copy()
    irfft(xk, 16)
    assert np.array_equal(xk, kept_k)


# ---------------------------------------------------------------------------
# dtype policy (regression: no silent complex128 promotion)
# ---------------------------------------------------------------------------

def test_irfft_complex64_in_float32_out():
    rng = np.random.default_rng(24)
    xk = np.fft.rfft(rng.standard_normal((2, 16))).astype(np.complex64)
    out = irfft(xk, 16)
    assert out.dtype == np.float32


def test_irfft_real_valued_half_spectrum_keeps_precision():
    """The seed promoted real-valued half spectra to complex128 no matter
    the input precision; the compiled path follows the dtype policy."""
    xk32 = np.ones((2, 9), dtype=np.float32)
    assert irfft(xk32, 16).dtype == np.float32
    xk64 = np.ones((2, 9), dtype=np.float64)
    assert irfft(xk64, 16).dtype == np.float64


def test_irfft_complex128_in_float64_out():
    rng = np.random.default_rng(25)
    xk = np.fft.rfft(rng.standard_normal((2, 16)))
    assert irfft(xk, 16).dtype == np.float64


def test_rfft_output_dtypes():
    rng = np.random.default_rng(26)
    assert rfft(rng.standard_normal((2, 8)).astype(np.float32)).dtype \
        == np.complex64
    assert rfft(rng.standard_normal((2, 8))).dtype == np.complex128
    # integer input follows the "everything else is double" rule
    assert rfft(np.arange(8).reshape(1, 8)).dtype == np.complex128


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------

def test_rfft_rejects_complex_input():
    with pytest.raises(ValueError):
        rfft(np.zeros((2, 8), dtype=complex))


def test_rfft_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        rfft(np.zeros((2, 12)))


def test_irfft_rejects_wrong_bin_count():
    with pytest.raises(ValueError):
        irfft(np.zeros((2, 8), dtype=complex), 32)
    with pytest.raises(ValueError):
        irfft(np.zeros((2, 9), dtype=complex), 24)  # not a power of two


def test_plan_execute_validates_geometry():
    p = compiled.get_rfft_plan(16, np.float32)
    with pytest.raises(ValueError):
        p.execute(np.zeros((2, 8), dtype=np.float32))  # wrong length
    with pytest.raises(ValueError):
        p.execute(np.zeros((2, 16), dtype=np.float64))  # wrong precision
    q = compiled.get_irfft_plan(16, np.float32)
    with pytest.raises(ValueError):
        q.execute(np.zeros((2, 16), dtype=np.complex64))  # wrong bin count
    with pytest.raises(ValueError):
        q.execute(np.zeros((2, 9), dtype=np.complex128))  # wrong precision


# ---------------------------------------------------------------------------
# pruned (truncated) R2C / padded C2R — oracle and property harness
# ---------------------------------------------------------------------------

def _slice_spectrum(xk, modes, axis):
    index = [slice(None)] * xk.ndim
    index[axis] = slice(0, modes)
    return xk[tuple(index)]


def _pad_spectrum(yk, n, axis):
    bins = n // 2 + 1
    widths = [(0, 0)] * yk.ndim
    widths[axis] = (0, bins - yk.shape[axis])
    return np.pad(yk, widths)


def _trunc_spectrum(shape_lead, modes, dtype, rng):
    """A random truncated half spectrum (real DC, as a real signal has)."""
    yk = (rng.standard_normal((*shape_lead, modes))
          + 1j * rng.standard_normal((*shape_lead, modes))).astype(dtype)
    yk[..., 0] = yk[..., 0].real
    return yk


@pytest.mark.parametrize("dtype", REAL_DTYPES)
@pytest.mark.parametrize("n,modes", [(8, 1), (8, 2), (32, 3), (64, 8),
                                     (128, 5), (256, 16), (256, 32)])
def test_truncated_rfft_matches_legacy_slice(backend, dtype, n, modes):
    """The fused prune equals the legacy full transform plus a slice."""
    rng = np.random.default_rng(30)
    x = _real_data((4, n), dtype, rng)
    got = truncated_rfft(x, modes)
    assert got.shape == (4, modes)
    assert got.flags.c_contiguous
    np.testing.assert_allclose(
        got, legacy.rfft(x)[:, :modes], atol=ATOL[np.dtype(dtype)] * n
    )


@pytest.mark.parametrize("dtype", REAL_DTYPES)
@pytest.mark.parametrize("n,modes", [(16, 2), (64, 4), (256, 12), (512, 64)])
def test_truncated_rfft_matches_numpy(backend, dtype, n, modes):
    rng = np.random.default_rng(31)
    x = _real_data((3, n), dtype, rng)
    np.testing.assert_allclose(
        truncated_rfft(x, modes),
        np.fft.rfft(x.astype(np.float64))[:, :modes],
        atol=ATOL[np.dtype(dtype)] * n,
    )


@pytest.mark.parametrize("dtype", (np.complex64, np.complex128))
@pytest.mark.parametrize("n,modes", [(8, 2), (32, 3), (64, 8), (256, 16)])
def test_padded_irfft_matches_legacy_pad(backend, dtype, n, modes):
    """The input-pruned synthesis equals zero-pad plus the legacy C2R."""
    rng = np.random.default_rng(32)
    yk = _trunc_spectrum((4,), modes, dtype, rng)
    got = padded_irfft(yk, n)
    assert got.shape == (4, n)
    assert got.dtype == np.finfo(dtype).dtype
    np.testing.assert_allclose(
        got,
        legacy.irfft(_pad_spectrum(yk.astype(np.complex128), n, -1), n),
        atol=ATOL[np.dtype(dtype)] * n,
    )


@pytest.mark.parametrize("n,modes", [(16, 3), (64, 8), (512, 17)])
def test_padded_irfft_matches_numpy(backend, n, modes):
    rng = np.random.default_rng(33)
    yk = _trunc_spectrum((2, 3), modes, np.complex128, rng)
    np.testing.assert_allclose(
        padded_irfft(yk, n),
        np.fft.irfft(_pad_spectrum(yk, n, -1), n),
        atol=1e-10 * n,
    )


@pytest.mark.parametrize("dtype", REAL_DTYPES)
@pytest.mark.parametrize("n,modes", [(32, 4), (128, 9), (256, 32)])
def test_pruned_roundtrip_is_low_pass(backend, dtype, n, modes):
    """trunc -> pad round trip acts as the ideal low-pass projector."""
    rng = np.random.default_rng(34)
    x = _real_data((3, n), dtype, rng)
    got = padded_irfft(truncated_rfft(x, modes), n)
    expected = np.fft.irfft(
        _pad_spectrum(np.fft.rfft(x.astype(np.float64))[:, :modes], n, -1), n
    )
    np.testing.assert_allclose(got, expected, atol=ATOL[np.dtype(dtype)] * n)


@pytest.mark.parametrize("shape,axis", [((2, 4, 64), 1), ((64, 5), 0),
                                        ((3, 128), -1), ((2, 64, 3), -2)])
def test_pruned_any_axis(backend, shape, axis):
    rng = np.random.default_rng(35)
    x = _real_data(shape, np.float64, rng)
    n = x.shape[axis]
    modes = max(1, n // 8)
    got = truncated_rfft(x, modes, axis=axis)
    assert got.flags.c_contiguous
    full = np.fft.rfft(x, axis=axis)
    np.testing.assert_allclose(
        got, _slice_spectrum(full, modes, axis % x.ndim), atol=1e-10 * n
    )
    yk = _slice_spectrum(full, modes, axis % x.ndim)
    np.testing.assert_allclose(
        padded_irfft(yk, n, axis=axis),
        np.fft.irfft(_pad_spectrum(yk, n, axis % x.ndim), n, axis=axis),
        atol=1e-10 * n,
    )


@pytest.mark.parametrize("dtype", REAL_DTYPES)
@pytest.mark.parametrize("contiguity", ["sliced", "F"])
def test_pruned_non_contiguous_inputs(backend, dtype, contiguity):
    rng = np.random.default_rng(36)
    x = _real_data((6, 64), dtype, rng, contiguity)
    np.testing.assert_allclose(
        truncated_rfft(x, 5),
        np.fft.rfft(x.astype(np.float64))[:, :5],
        atol=ATOL[np.dtype(dtype)] * 64,
    )
    yk = np.fft.rfft(np.asarray(x, dtype=np.float64))[:, :5]
    yk = np.asfortranarray(yk) if contiguity == "F" \
        else np.repeat(yk, 2, axis=0)[::2]
    np.testing.assert_allclose(
        padded_irfft(yk, 64),
        np.fft.irfft(_pad_spectrum(yk, 64, -1), 64),
        atol=1e-10 * 64,
    )


@pytest.mark.parametrize("seed", range(8))
def test_pruned_randomized_property(backend, seed):
    """Seeded fuzz over lengths, parts, batch shapes, axes and dtypes."""
    rng = np.random.default_rng(2000 + seed)
    n = 2 ** int(rng.integers(1, 10))
    modes = int(rng.integers(1, n // 2 + 2))
    dtype = [np.float32, np.float64][seed % 2]
    lead = tuple(int(rng.integers(1, 4))
                 for _ in range(int(rng.integers(0, 3))))
    axis = int(rng.integers(0, len(lead) + 1))
    shape = list(lead)
    shape.insert(axis, n)
    x = _real_data(tuple(shape), dtype, rng)
    got = truncated_rfft(x, modes, axis=axis)
    full = np.fft.rfft(x.astype(np.float64), axis=axis)
    np.testing.assert_allclose(
        got, _slice_spectrum(full, modes, axis),
        atol=ATOL[np.dtype(dtype)] * n,
    )
    back = padded_irfft(got, n, axis=axis)
    expected = np.fft.irfft(
        _pad_spectrum(_slice_spectrum(full, modes, axis), n, axis),
        n, axis=axis,
    )
    np.testing.assert_allclose(
        back, expected, atol=ATOL[np.dtype(dtype)] * n
    )


# ---------------------------------------------------------------------------
# pruned plans: bit-identity within the family
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("dtype", REAL_DTYPES)
def test_pruned_repeated_executions_bit_identical(backend, dtype):
    rng = np.random.default_rng(40)
    x = _real_data((5, 128), dtype, rng)
    first = truncated_rfft(x, 8)
    for _ in range(3):
        assert _bit_equal(truncated_rfft(x, 8), first)
    yk = _trunc_spectrum(
        (5,), 8, np.complex64 if dtype == np.float32 else np.complex128, rng
    )
    firsti = padded_irfft(yk, 128)
    for _ in range(3):
        assert _bit_equal(padded_irfft(yk, 128), firsti)


@pytest.mark.skipif(not kernels_available(), reason="needs the C kernels")
@pytest.mark.parametrize("dtype", REAL_DTYPES)
@pytest.mark.parametrize("n,modes", [(64, 4), (128, 8), (256, 3), (256, 32)])
def test_pruned_backends_bit_identical(dtype, n, modes, monkeypatch):
    """C-kernel and NumPy executors produce the same bytes for every
    pruned strategy (the C contractions replay the NumPy recurrences)."""
    from repro.fft import _ckernels

    rng = np.random.default_rng(41)
    x = _real_data((4, n), dtype, rng)
    yk = _trunc_spectrum(
        (4,), modes,
        np.complex64 if dtype == np.float32 else np.complex128, rng,
    )
    compiled.clear_fft_plan_cache()
    with_kernels = (truncated_rfft(x, modes), padded_irfft(yk, n))
    monkeypatch.setitem(_ckernels._state, "kernels", None)
    monkeypatch.setitem(_ckernels._state, "tried", True)
    compiled.clear_fft_plan_cache()
    without = (truncated_rfft(x, modes), padded_irfft(yk, n))
    assert _bit_equal(with_kernels[0], without[0])
    assert _bit_equal(with_kernels[1], without[1])
    compiled.clear_fft_plan_cache()


@pytest.mark.skipif(not kernels_available(), reason="needs the C kernels")
def test_pruned_scoped_numpy_caches_bit_identical():
    """A numpy-pinned PlanCaches set installed via plan_cache_scope
    reproduces the default (C-kernel) bytes exactly."""
    rng = np.random.default_rng(42)
    x = _real_data((3, 256), np.float64, rng)
    yk = _trunc_spectrum((3,), 16, np.complex128, rng)
    compiled.clear_fft_plan_cache()
    default = (truncated_rfft(x, 16), padded_irfft(yk, 256))
    with compiled.plan_cache_scope(compiled.PlanCaches(backend="numpy")):
        scoped = (truncated_rfft(x, 16), padded_irfft(yk, 256))
    assert _bit_equal(default[0], scoped[0])
    assert _bit_equal(default[1], scoped[1])
    compiled.clear_fft_plan_cache()


def test_pruned_interleaved_workspace_safety(backend):
    """Interleaved calls with different batch shapes and parts through
    the same cached pruned plans must not corrupt workspaces."""
    rng = np.random.default_rng(43)
    xs = [
        _real_data((3, 64), np.float64, rng),
        _real_data((2, 5, 64), np.float64, rng),
        _real_data((1, 64), np.float64, rng),
        _real_data((4, 2, 64), np.float64, rng),
    ]
    parts = [4, 8, 4, 8]
    expected = [np.fft.rfft(x, axis=-1)[..., :m] for x, m in zip(xs, parts)]
    first = [truncated_rfft(x, m) for x, m in zip(xs, parts)]
    second = [truncated_rfft(x, m)
              for x, m in reversed(list(zip(xs, parts)))][::-1]
    for e, g1, g2 in zip(expected, first, second):
        np.testing.assert_allclose(g1, e, atol=1e-10 * 64)
        assert _bit_equal(g1, g2)
    iexpected = [np.fft.irfft(_pad_spectrum(k, 64, k.ndim - 1), 64, axis=-1)
                 for k in expected]
    ifirst = [padded_irfft(k, 64) for k in expected]
    isecond = [padded_irfft(k, 64) for k in reversed(expected)][::-1]
    for e, g1, g2 in zip(iexpected, ifirst, isecond):
        np.testing.assert_allclose(g1, e, atol=1e-10 * 64)
        assert _bit_equal(g1, g2)


def test_pruned_execution_does_not_mutate_input(backend):
    rng = np.random.default_rng(44)
    x = _real_data((4, 64), np.float64, rng)
    kept = x.copy()
    truncated_rfft(x, 5)
    assert np.array_equal(x, kept)
    yk = _trunc_spectrum((4,), 5, np.complex128, rng)
    kept_k = yk.copy()
    padded_irfft(yk, 64)
    assert np.array_equal(yk, kept_k)


# ---------------------------------------------------------------------------
# pruned plans: cache semantics and scope isolation
# ---------------------------------------------------------------------------

def test_pruned_same_key_returns_same_plan_object():
    p1 = compiled.get_pruned_rfft_plan(128, 8, np.float32)
    assert compiled.get_pruned_rfft_plan(128, 8, np.float32) is p1
    # dtype normalisation: float32 and complex64 share one plan
    assert compiled.get_pruned_rfft_plan(128, 8, np.complex64) is p1
    # part, direction, precision and length are all distinct keys
    assert compiled.get_pruned_rfft_plan(128, 16, np.float32) is not p1
    assert compiled.get_pruned_irfft_plan(128, 8, np.float32) is not p1
    assert compiled.get_pruned_rfft_plan(128, 8, np.float64) is not p1
    assert compiled.get_pruned_rfft_plan(256, 8, np.float32) is not p1


def test_pruned_plans_share_the_cached_sub_plans():
    """Decomposition sub-transforms resolve from the owning cache set:
    the length-q sub-plan *is* the cached C2C plan object."""
    compiled.clear_fft_plan_cache()
    p = compiled.get_pruned_rfft_plan(256, 8, np.float32)
    assert p._strategy == "decomp"
    assert p._sub is compiled.get_fft_plan(8, np.complex64, inverse=False)
    q = compiled.get_pruned_irfft_plan(256, 8, np.float32)
    assert q._strategy == "decomp"
    assert q._sub is compiled.get_fft_plan(8, np.complex64, inverse=True)


def test_pruned_plan_cache_scope_isolation():
    """Plans requested under plan_cache_scope come from the scoped set —
    including their sub-plans — and never leak into the default set."""
    compiled.clear_fft_plan_cache()
    own = compiled.PlanCaches()
    default_plan = compiled.get_pruned_rfft_plan(128, 8, np.float32)
    with compiled.plan_cache_scope(own):
        scoped_plan = compiled.get_pruned_rfft_plan(128, 8, np.float32)
        assert scoped_plan is not default_plan
        assert scoped_plan is own.pruned_rfft(128, 8, np.float32)
        # the scoped plan's sub-transform lives in the scoped set too
        assert scoped_plan._sub is own.fft(8, np.complex64, inverse=False)
        assert scoped_plan._sub is not compiled.default_plan_caches().fft(
            8, np.complex64, inverse=False
        )
    # leaving the scope restores the default set
    assert compiled.get_pruned_rfft_plan(128, 8, np.float32) is default_plan
    compiled.clear_fft_plan_cache()


def test_pruned_degenerate_full_plan_resolves_in_owning_set():
    own = compiled.PlanCaches()
    plan = own.pruned_rfft(32, 17, np.float64)
    assert plan._strategy == "full"
    assert plan._full is own.rfft(32, np.float64)
    assert plan._full is not compiled.get_rfft_plan(32, np.float64)


def test_pruned_clear_plan_cache_resets_objects():
    p1 = compiled.get_pruned_rfft_plan(64, 4, np.float32)
    compiled.clear_fft_plan_cache()
    assert compiled.get_pruned_rfft_plan(64, 4, np.float32) is not p1


def test_pruned_plan_tables_are_readonly_and_precast():
    p = compiled.get_pruned_rfft_plan(256, 8, np.float32)
    for table in (p._u, p._v):
        assert table.dtype == np.complex64
        assert not table.flags.writeable
    q = compiled.get_pruned_irfft_plan(256, 8, np.float64)
    for table in (q._ch, q._ct, q._wdh, q._wdt):
        assert table.dtype == np.complex128
        assert not table.flags.writeable


# ---------------------------------------------------------------------------
# pruned plans: edge cases and degenerate strategies
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("n", [2, 16, 128])
def test_pruned_degenerate_aliases_full_plan_bit_exactly(backend, n):
    """modes == n//2 + 1 is the degenerate prune: it delegates to the
    plain R2C/C2R plans and is bit-exact against them."""
    rng = np.random.default_rng(50)
    bins = n // 2 + 1
    x = _real_data((3, n), np.float64, rng)
    assert compiled.get_pruned_rfft_plan(n, bins, np.float64)._strategy \
        == "full"
    assert _bit_equal(truncated_rfft(x, bins), rfft(x))
    xk = _half_spectrum((3,), n, np.complex128, rng)
    assert _bit_equal(padded_irfft(xk, n), irfft(xk, n))


@pytest.mark.parametrize("n", [16, 64])
def test_pruned_slice_strategy_bit_exact_vs_full_plus_slice(backend, n):
    """Large parts with no whole stage to drop fall back to
    transform-then-slice, bit-exact versus that composition."""
    part = n // 2  # q = next_pow2(part) = h > h/2 -> "slice"
    plan = compiled.get_pruned_rfft_plan(n, part, np.float64)
    assert plan._strategy == "slice"
    rng = np.random.default_rng(51)
    x = _real_data((4, n), np.float64, rng)
    assert _bit_equal(truncated_rfft(x, part), rfft(x)[:, :part])


@pytest.mark.parametrize("n", [16, 64])
def test_pruned_pad_strategy_bit_exact_vs_pad_plus_full(backend, n):
    part = n // 2
    plan = compiled.get_pruned_irfft_plan(n, part, np.complex128)
    assert plan._strategy == "pad"
    rng = np.random.default_rng(52)
    yk = _trunc_spectrum((4,), part, np.complex128, rng)
    assert _bit_equal(padded_irfft(yk, n), irfft(_pad_spectrum(yk, n, -1), n))


@pytest.mark.parametrize("n", [8, 64, 256])
def test_pruned_dc_only(backend, n):
    """modes == 1 keeps just the DC bin; the synthesis is the mean."""
    rng = np.random.default_rng(53)
    x = _real_data((3, n), np.float64, rng)
    got = truncated_rfft(x, 1)
    np.testing.assert_allclose(got, np.fft.rfft(x)[:, :1], atol=1e-10 * n)
    back = padded_irfft(got, n)
    np.testing.assert_allclose(
        back, np.broadcast_to(x.mean(axis=-1, keepdims=True), x.shape),
        atol=1e-10 * n,
    )


def test_pruned_nyquist_boundary(backend):
    """Parts straddling the Nyquist bin (h vs h+1 for even n) stay
    consistent with the full-transform slice."""
    n = 32
    h = n // 2
    rng = np.random.default_rng(54)
    x = _real_data((4, n), np.float64, rng)
    full = np.fft.rfft(x)
    for part in (h - 1, h, h + 1):
        np.testing.assert_allclose(
            truncated_rfft(x, part), full[:, :part], atol=1e-10 * n
        )
        yk = np.ascontiguousarray(full[:, :part])
        np.testing.assert_allclose(
            padded_irfft(yk, n),
            np.fft.irfft(_pad_spectrum(yk, n, -1), n),
            atol=1e-10 * n,
        )


def test_pruned_rejects_bad_geometry():
    with pytest.raises(ValueError):
        truncated_rfft(np.zeros((2, 12)), 3)  # not a power of two
    with pytest.raises(ValueError):
        truncated_rfft(np.zeros((2, 16)), 0)  # part below range
    with pytest.raises(ValueError):
        truncated_rfft(np.zeros((2, 16)), 10)  # part above n//2 + 1
    with pytest.raises(ValueError):
        truncated_rfft(np.zeros((2, 16), dtype=complex), 3)  # complex input
    with pytest.raises(ValueError):
        padded_irfft(np.zeros((2, 3), dtype=complex), 12)  # non-pow2 n
    with pytest.raises(ValueError):
        padded_irfft(np.zeros((2, 10), dtype=complex), 16)  # too many bins
    with pytest.raises(ValueError):
        compiled.get_pruned_rfft_plan(24, 3, np.float32)
    with pytest.raises(ValueError):
        compiled.get_pruned_irfft_plan(16, 0, np.complex64)


def test_pruned_part_mismatch_is_typed(backend):
    """Wrong bin counts raise PrunedPartMismatchError (a ValueError)."""
    plan = compiled.get_pruned_irfft_plan(64, 4, np.complex128)
    with pytest.raises(compiled.PrunedPartMismatchError):
        plan.execute(np.zeros((2, 5), dtype=np.complex128))
    assert issubclass(compiled.PrunedPartMismatchError, ValueError)
    # wrong precision is a plain ValueError, not a part mismatch
    with pytest.raises(ValueError):
        plan.execute(np.zeros((2, 4), dtype=np.complex64))


def test_pruned_rfft_plan_execute_validates_geometry(backend):
    plan = compiled.get_pruned_rfft_plan(64, 4, np.float64)
    with pytest.raises(ValueError):
        plan.execute(np.zeros((2, 32)))  # wrong length
    with pytest.raises(ValueError):
        plan.execute(np.zeros((2, 64), dtype=np.float32))  # wrong precision
