"""Tests for problem descriptions and the TurboFNO configuration."""

import pytest

from repro.core.config import FNO1DProblem, FNO2DProblem, TurboFNOConfig
from repro.gemm.params import TABLE1_CGEMM


class TestFNO1DProblem:
    def test_defaults_square_weights(self):
        p = FNO1DProblem(batch=4, hidden=64, dim_x=128, modes=64)
        assert p.n_out == 64
        assert p.gemm_m == 4 * 64
        assert p.m_spatial == 4 * 128

    def test_from_m_spatial(self):
        p = FNO1DProblem.from_m_spatial(2**20, 32, 128, 64)
        assert p.batch == 2**20 // 128
        assert p.m_spatial == 2**20

    def test_from_m_spatial_divisibility(self):
        with pytest.raises(ValueError):
            FNO1DProblem.from_m_spatial(100, 32, 128, 64)

    @pytest.mark.parametrize("kw", [
        dict(batch=0, hidden=1, dim_x=128, modes=64),
        dict(batch=1, hidden=0, dim_x=128, modes=64),
        dict(batch=1, hidden=1, dim_x=100, modes=64),
        dict(batch=1, hidden=1, dim_x=128, modes=3),
        dict(batch=1, hidden=1, dim_x=128, modes=256),
        dict(batch=1, hidden=1, dim_x=128, modes=64, out_dim=0),
    ])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            FNO1DProblem(**kw)


class TestFNO2DProblem:
    def test_gemm_m_is_truncated_grid(self):
        p = FNO2DProblem(batch=8, hidden=64, dim_x=256, dim_y=128,
                         modes_x=64, modes_y=64)
        assert p.gemm_m == 8 * 64 * 64
        assert p.n_out == 64

    @pytest.mark.parametrize("kw", [
        dict(batch=8, hidden=4, dim_x=100, dim_y=128, modes_x=4, modes_y=4),
        dict(batch=8, hidden=4, dim_x=128, dim_y=128, modes_x=256, modes_y=4),
        dict(batch=8, hidden=4, dim_x=128, dim_y=128, modes_x=4, modes_y=0),
    ])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            FNO2DProblem(**kw)


class TestTurboFNOConfig:
    def test_defaults(self):
        cfg = TurboFNOConfig()
        assert cfg.gemm is TABLE1_CGEMM
        assert cfg.kloop_memory_derate >= 1.0
        assert cfg.epilogue_bank_utilization == 1.0

    def test_per_thread_table1_values(self):
        cfg = TurboFNOConfig()
        assert cfg.per_thread_for(128) == 8
        assert cfg.per_thread_for(256) == 16
        assert cfg.per_thread_for(1024) == 16  # capped

    def test_per_thread_override(self):
        cfg = TurboFNOConfig(fft_per_thread=4)
        assert cfg.per_thread_for(256) == 4
        assert cfg.per_thread_for(2) == 2  # never exceeds n

    def test_fused_gemm_raises_m_tile_to_modes(self):
        cfg = TurboFNOConfig()
        p64 = cfg.fused_gemm(64)
        assert p64.m_tb == 64
        p128 = cfg.fused_gemm(128)
        assert p128.m_tb == 128
        # Small modes keep the Table 1 tile.
        assert cfg.fused_gemm(16).m_tb == TABLE1_CGEMM.m_tb

    def test_fused_gemm_widens_n_tile(self):
        cfg = TurboFNOConfig(fused_n_tb=64)
        assert cfg.fused_gemm(64).n_tb == 64

    @pytest.mark.parametrize("kw", [
        dict(kloop_memory_derate=0.9),
        dict(epilogue_bank_utilization=0.0),
        dict(forward_bank_utilization=1.5),
        dict(fft_per_thread=3),
        dict(signals_per_block=0),
    ])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            TurboFNOConfig(**kw)
