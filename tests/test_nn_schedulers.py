"""Tests for learning-rate schedules and gradient clipping."""

import math

import numpy as np
import pytest

from repro.nn.modules import Parameter
from repro.nn.optim import Adam
from repro.nn.schedulers import CosineLR, StepLR, clip_grad_norm


def _opt(lr=0.1):
    return Adam([Parameter(np.zeros(3))], lr=lr)


class TestStepLR:
    def test_decay_schedule(self):
        opt = _opt(0.1)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        lrs = [sched.step() for _ in range(6)]
        assert lrs == pytest.approx([0.1, 0.05, 0.05, 0.025, 0.025, 0.0125])

    def test_validation(self):
        with pytest.raises(ValueError):
            StepLR(_opt(), step_size=0)
        with pytest.raises(ValueError):
            StepLR(_opt(), step_size=1, gamma=0.0)


class TestCosineLR:
    def test_endpoints(self):
        opt = _opt(0.1)
        sched = CosineLR(opt, t_max=10, min_lr=0.01)
        for _ in range(10):
            last = sched.step()
        assert last == pytest.approx(0.01)

    def test_halfway_value(self):
        opt = _opt(0.2)
        sched = CosineLR(opt, t_max=4)
        sched.step()
        sched.step()  # t = t_max/2 -> cos(pi/2) = 0 -> lr = base/2
        assert opt.lr == pytest.approx(0.1)

    def test_monotone_decay(self):
        opt = _opt(1.0)
        sched = CosineLR(opt, t_max=20)
        lrs = [sched.step() for _ in range(20)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_clamps_after_t_max(self):
        opt = _opt(1.0)
        sched = CosineLR(opt, t_max=3)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            CosineLR(_opt(), t_max=0)
        with pytest.raises(ValueError):
            CosineLR(_opt(), t_max=5, min_lr=-1.0)


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(4))
        p.grad = np.array([3.0, 0.0, 0.0, 0.0])
        norm = clip_grad_norm([p], max_norm=5.0)
        assert norm == pytest.approx(3.0)
        assert np.allclose(p.grad, [3.0, 0, 0, 0])

    def test_clips_to_max_norm(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([3.0, 4.0])  # norm 5
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert math.isclose(np.linalg.norm(p.grad), 1.0, rel_tol=1e-9)

    def test_global_norm_across_params(self):
        p1 = Parameter(np.zeros(1)); p1.grad = np.array([3.0])
        p2 = Parameter(np.zeros(1)); p2.grad = np.array([4.0])
        norm = clip_grad_norm([p1, p2], max_norm=10.0)
        assert norm == pytest.approx(5.0)

    def test_complex_gradients(self):
        p = Parameter(np.zeros(1, dtype=complex))
        p.grad = np.array([3.0 + 4.0j])
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert abs(p.grad[0]) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            clip_grad_norm([Parameter(np.zeros(1))], max_norm=0.0)
