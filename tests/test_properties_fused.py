"""Property-based tests for the fused operators and the pipeline model.

Hypothesis drives random layer geometries through two invariants:

1. the fused single-kernel dataflow always equals the staged oracle, for
   any tiling of the k-loop and signal dimensions;
2. along the Table 2 ladder, modelled DRAM traffic and kernel launches are
   monotone non-increasing for *every* problem shape (fusion can cost
   time via recompute, but it never adds memory transactions or
   launches in this model — flops are the currency it spends).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.pytorch_fno import pytorch_like_spectral_conv_1d
from repro.core.config import FNO1DProblem, FNO2DProblem
from repro.core.fused import fused_fft_gemm_ifft_1d
from repro.core.pipeline_model import build_pipeline_1d, build_pipeline_2d
from repro.core.stages import FusionStage


@st.composite
def _layer_1d(draw):
    log_n = draw(st.integers(2, 6))
    dim_x = 2**log_n
    modes = 2 ** draw(st.integers(0, log_n))
    batch = draw(st.integers(1, 4))
    c_in = draw(st.integers(1, 6))
    c_out = draw(st.integers(1, 6))
    k_tb = draw(st.sampled_from([1, 2, 8]))
    signal_tile = draw(st.sampled_from([1, 3, 16]))
    seed = draw(st.integers(0, 2**31 - 1))
    return dim_x, modes, batch, c_in, c_out, k_tb, signal_tile, seed


class TestFusedEqualsOracle:
    @given(_layer_1d())
    @settings(max_examples=30, deadline=None)
    def test_any_geometry_any_tiling(self, case):
        dim_x, modes, batch, c_in, c_out, k_tb, tile, seed = case
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((batch, c_in, dim_x)) + 1j * rng.standard_normal(
            (batch, c_in, dim_x)
        )
        w = (rng.standard_normal((c_in, c_out))
             + 1j * rng.standard_normal((c_in, c_out))) / max(c_in, 1)
        fused = fused_fft_gemm_ifft_1d(x, w, modes, k_tb=k_tb,
                                       signal_tile=tile)
        oracle = pytorch_like_spectral_conv_1d(x, w, modes)
        scale = 1 + np.abs(oracle).max()
        assert np.allclose(fused, oracle, atol=1e-8 * scale)


@st.composite
def _problem_1d(draw):
    dim_x = draw(st.sampled_from([64, 128, 256]))
    modes = draw(st.sampled_from([16, 32, 64]))
    batch = draw(st.integers(1, 4096))
    hidden = draw(st.integers(1, 160))
    return FNO1DProblem(batch=batch, hidden=hidden, dim_x=dim_x,
                        modes=min(modes, dim_x))


_LADDER_ORDER = [
    FusionStage.PYTORCH,
    FusionStage.FFT_OPT,
    FusionStage.FUSED_FFT_GEMM,
    FusionStage.FUSED_ALL,
]


class TestLadderMonotonicity:
    @given(_problem_1d())
    @settings(max_examples=30, deadline=None)
    def test_launches_strictly_decrease(self, prob):
        launches = [
            build_pipeline_1d(prob, s).counters().kernel_launches
            for s in _LADDER_ORDER
        ]
        assert launches == sorted(launches, reverse=True)
        assert launches[0] == 5 and launches[-1] == 1

    @given(_problem_1d())
    @settings(max_examples=30, deadline=None)
    def test_writes_never_increase_along_ladder(self, prob):
        writes = [
            build_pipeline_1d(prob, s).counters().global_bytes_written
            for s in _LADDER_ORDER
        ]
        for earlier, later in zip(writes, writes[1:]):
            assert later <= earlier + 1e-6

    @given(_problem_1d())
    @settings(max_examples=30, deadline=None)
    def test_stage_a_traffic_below_baseline(self, prob):
        base = build_pipeline_1d(prob, FusionStage.PYTORCH).counters()
        opt = build_pipeline_1d(prob, FusionStage.FFT_OPT).counters()
        assert opt.global_bytes < base.global_bytes

    @given(_problem_1d())
    @settings(max_examples=20, deadline=None)
    def test_all_stage_times_finite_positive(self, prob):
        for s in _LADDER_ORDER:
            t = build_pipeline_1d(prob, s).total_time()
            assert np.isfinite(t) and t > 0


class TestLadder2D:
    @given(
        st.integers(1, 64), st.integers(1, 160),
        st.sampled_from([(256, 128), (256, 256), (128, 128)]),
        st.sampled_from([32, 64]),
    )
    @settings(max_examples=20, deadline=None)
    def test_2d_launches_and_traffic(self, batch, hidden, grid, modes):
        prob = FNO2DProblem(batch=batch, hidden=hidden, dim_x=grid[0],
                            dim_y=grid[1], modes_x=modes, modes_y=modes)
        base = build_pipeline_2d(prob, FusionStage.PYTORCH).counters()
        full = build_pipeline_2d(prob, FusionStage.FUSED_ALL).counters()
        assert base.kernel_launches == 7
        assert full.kernel_launches == 3
        assert full.global_bytes_written < base.global_bytes_written
