"""Regenerate every table and figure of the paper in one run.

Writes the rendered series/heatmaps to ``examples/paper_report/`` and
prints a compact summary with the paper's reference numbers next to the
reproduction's.  Pass ``--dense`` for the paper's full sweep resolution
(slower).

Run:  python examples/reproduce_paper.py [--dense]
"""

import argparse
import pathlib
import sys

import numpy as np

from repro.analysis import figures, render_heatmap, render_series, summarize
from repro.core.stages import FusionStage

REPORT_DIR = pathlib.Path(__file__).parent / "paper_report"

SWEEP_FIGURES = {
    "fig10": (figures.fig10, FusionStage.FFT_OPT, "1D FFT opt: avg ~50%"),
    "fig11": (figures.fig11, FusionStage.FUSED_FFT_GEMM,
              "1D fused FFT-CGEMM: +3-5% over A, inverts at large K"),
    "fig12": (figures.fig12, FusionStage.FUSED_GEMM_IFFT,
              "1D fused CGEMM-iFFT: >=50% vs PyTorch"),
    "fig13": (figures.fig13, FusionStage.FUSED_ALL,
              "1D full fusion: up to +150%"),
    "fig15": (figures.fig15, FusionStage.FFT_OPT, "2D FFT opt: avg >+50%"),
    "fig16": (figures.fig16, FusionStage.FUSED_FFT_GEMM,
              "2D fused FFT-CGEMM: +1-2%"),
    "fig17": (figures.fig17, FusionStage.FUSED_GEMM_IFFT,
              "2D fused CGEMM-iFFT: +1-3% over A"),
    "fig18": (figures.fig18, FusionStage.FUSED_ALL,
              "2D full fusion: +50-105%"),
}

HEATMAP_FIGURES = {
    "fig14": (figures.fig14, "1D best-of: avg +44%, max +250%"),
    "fig19": (figures.fig19, "2D best-of: avg +67%, max +150%"),
}


def main(argv: list[str]) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dense", action="store_true",
                        help="use the paper's full sweep resolution")
    args = parser.parse_args(argv)
    REPORT_DIR.mkdir(exist_ok=True)

    print("== exact artifacts ==")
    r = figures.fig01c()
    (REPORT_DIR / "fig01c.txt").write_text(
        r.pytorch.breakdown() + "\n" + r.turbo.breakdown() + "\n"
    )
    print(f"fig01c: 5 kernels -> 1 kernel, modelled speedup "
          f"{r.speedup_percent:+.1f}%")
    rows = figures.fig05()
    print("fig05 :", ", ".join(
        f"{row.n}pt keep {row.keep}: {row.fraction:.1%}" for row in rows[:2]
    ), "(paper: 37.5% / 75%)")
    print("fig07 :", {k: f"{v:.2%}" for k, v in figures.fig07().items()})
    print("fig08 :", {k: f"{v:.2%}" for k, v in figures.fig08().items()})

    print("\n== sweep figures ==")
    for name, (builder, stage, paper) in SWEEP_FIGURES.items():
        panels = builder(dense=args.dense)
        stats = summarize(panels, stage)
        text = "\n\n".join(render_series(p) for p in panels)
        (REPORT_DIR / f"{name}.txt").write_text(text + "\n")
        print(
            f"{name}: stage {stage.value} mean {stats['mean']:+6.1f}% "
            f"max {stats['max']:+6.1f}%   [paper: {paper}]"
        )

    print("\n== heatmap figures ==")
    for name, (builder, paper) in HEATMAP_FIGURES.items():
        panels = builder(dense=args.dense)
        text = "\n\n".join(render_heatmap(h) for h in panels)
        (REPORT_DIR / f"{name}.txt").write_text(text + "\n")
        mean = float(np.mean([h.mean for h in panels]))
        best = max(h.max for h in panels)
        print(f"{name}: mean {mean:+6.1f}% max {best:+6.1f}%   [paper: {paper}]")

    print(f"\nfull report written to {REPORT_DIR}/")


if __name__ == "__main__":
    main(sys.argv[1:])
