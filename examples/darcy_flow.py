"""Train a 2-D FNO on Darcy flow (coefficient -> pressure field).

The coefficient fields are thresholded Gaussian random fields (the FNO
paper's 12/3 binary medium); solutions come from the finite-volume solver
with harmonic face averaging.  Inputs are normalised and given coordinate
channels; the FNO2d uses the paper's shared-weight (single-CGEMM) spectral
layers, so the forward pass runs through the fused TurboFNO dataflow.

Run:  python examples/darcy_flow.py
"""

import time

import numpy as np

from repro.nn import Adam, FNO2d, train
from repro.nn.trainer import evaluate
from repro.pde import darcy_dataset


def featurize(a: np.ndarray) -> np.ndarray:
    """Normalise the coefficient and append coordinate channels."""
    n_samples, n, _ = a.shape
    a_norm = (a - a.mean()) / a.std()
    xs = np.linspace(0.0, 1.0, n, endpoint=False)
    gx = np.tile(xs[:, None], (n_samples, 1, n)).reshape(n_samples, n, n)
    gy = np.tile(xs[None, :], (n_samples, n, 1)).reshape(n_samples, n, n)
    return np.stack([a_norm, gx, gy], axis=1)  # (n_samples, 3, n, n)


def main() -> None:
    n_train, n_test, n = 48, 12, 16
    print(f"generating {n_train + n_test} Darcy problems on a {n}x{n} grid ...")
    a, u = darcy_dataset(n_train + n_test, n=n, seed=11)
    x = featurize(a)
    y = (u / u.std())[:, None, :, :]

    x_train, y_train = x[:n_train], y[:n_train]
    x_test, y_test = x[n_train:], y[n_train:]

    model = FNO2d(in_channels=3, out_channels=1, width=16, modes_x=8,
                  modes_y=8, depth=3, proj_width=32, per_mode=False, seed=0)
    print(f"FNO2d with {model.num_parameters()} parameters "
          "(shared-weight spectral layers -> fused TurboFNO dataflow)")
    opt = Adam(list(model.parameters()), lr=3e-3)

    t0 = time.time()
    history = train(model, opt, x_train, y_train, epochs=30, batch_size=12,
                    x_test=x_test, y_test=y_test, verbose=True)
    print(f"trained in {time.time() - t0:.1f}s")
    print(f"final train rel-L2: {history.final_train:.4f}")
    print(f"final  test rel-L2: {evaluate(model, x_test, y_test):.4f}")


if __name__ == "__main__":
    main()
