"""Quickstart: one session — plan, warmup, batched inference, sweep.

Everything goes through one ``repro.api.Session``, the stateful
execution context that owns the plan cache, the FFT-plan caches and the
compiled-executor pool:

* ``session.plan(problem, stage=...)`` — compile one execution strategy
  into an ``ExecutionPlan`` (kernel pipeline + modelled report).
  ``stage`` defaults to BEST, so ``session.plan(problem).stage`` names
  the winning rung of the Table 2 ladder.
* ``session.warmup(problems)`` — pre-compile the plans and FFT plans a
  geometry will need, so the first real request pays nothing.
* ``session.infer(model, x)`` / ``session.infer_many(requests)`` — the
  serving path: requests are micro-batched by geometry and each batch
  runs one pooled compiled executor, bit-identical to per-request
  execution.
* ``api.Runner(session=...)`` — map plans over many problems or stages
  through the session's cache.
* ``backend="auto" | "ckernels" | "numpy"`` pins the executor substrate
  per session (outputs are byte-identical across backends); devices are
  named, so a second session can re-ask every question of an H100.

The module-level ``api.plan`` / ``api.spectral_conv`` remain available
as thin wrappers over a default session.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import FNO1DProblem, FusionStage, api


def main() -> None:
    rng = np.random.default_rng(0)

    # A paper-shaped layer: batch of 8 signals, hidden dim 64, 128-point
    # grid, keep the low 64 frequency bins.
    batch, hidden, dim_x, modes = 8, 64, 128, 64
    problem = FNO1DProblem.from_m_spatial(2**20, hidden=hidden,
                                          dim_x=dim_x, modes=modes)
    weight = ((rng.standard_normal((hidden, hidden))
               + 1j * rng.standard_normal((hidden, hidden))) / hidden
              ).astype(np.complex64)

    with api.Session() as session:
        print("== plan: what does fusion buy on an A100? ==")
        baseline = session.plan(problem, FusionStage.PYTORCH)
        print(baseline.report().breakdown())
        for stage in FusionStage.ladder():
            p = session.plan(problem, stage)
            print(
                f"  stage {stage.value}: {p.total_time * 1e3:7.3f} ms "
                f"({p.launch_count} kernels)  speedup "
                f"{p.speedup_vs_baseline():+6.1f}%  -- {stage.description}"
            )
        best = session.plan(problem)  # stage defaults to BEST
        print(f"  stage E resolves to stage {best.stage.value} on this problem")

        print("\n== warmup -> infer: the serving path ==")
        print(f"  warmup: {session.warmup([problem])}")
        model = api.SpectralModel(weight, modes)
        requests = []
        for i in range(16):
            n = dim_x if i % 2 == 0 else 2 * dim_x  # mixed geometries
            x = (rng.standard_normal((batch, hidden, n))
                 + 1j * rng.standard_normal((batch, hidden, n))
                 ).astype(np.complex64)
            requests.append((model, x))
        outs = session.infer_many(requests, max_batch=8)
        one = session.infer(model, requests[0][1])
        print(f"  infer_many: {len(outs)} results, first {outs[0].shape}; "
              f"bit-identical to infer: {np.array_equal(outs[0], one)}")
        stats = session.stats()
        print(f"  stats: {stats['requests']} requests in "
              f"{stats['batches']} micro-batches, "
              f"executor pool size {stats['executor_pool']}")

        print("\n== sweep: many problems through the session's cache ==")
        runner = api.Runner(session=session)
        probs = [FNO1DProblem.from_m_spatial(2**20, k, dim_x, modes)
                 for k in (32, 64, 128)]
        for prob, speed in zip(probs, runner.map_speedups(probs)):
            print(f"  K={prob.hidden:<4d} best-stage speedup {speed:+6.1f}%")

    print("\n== same question, H100-class device ==")
    with api.Session(device="h100") as h100:
        best_h = h100.plan(problem)
        print(
            f"  {h100.device.name}: best stage {best_h.stage.value}, "
            f"{best_h.total_time * 1e3:7.3f} ms, "
            f"speedup {best_h.speedup_vs_baseline():+6.1f}%"
        )


if __name__ == "__main__":
    main()
