"""Quickstart: one Fourier layer, three engines, one modelled speedup.

Runs the paper's spectral convolution (FFT -> truncate -> CGEMM ->
zero-pad -> iFFT) through the staged PyTorch-style engine, the Stockham
reference engine and the fused TurboFNO engine, checks they agree, and
asks the A100 execution model what the fusion is worth.

Quickstart via ``repro.api``
----------------------------
Everything goes through the planning facade:

* ``api.spectral_conv(x, weight, modes, engine=...)`` — the numeric
  operator, dispatched on the input's rank (1-D and 2-D alike).
* ``api.plan(problem, stage=..., device=...)`` — compile one execution
  strategy into an ``ExecutionPlan`` (kernel pipeline + modelled report).
  ``stage`` defaults to BEST, so ``api.plan(problem).stage`` names the
  winning rung of the Table 2 ladder.
* ``api.Runner(config=..., device=...)`` — map plans over many problems
  or stages; repeated geometries hit a shared LRU plan cache.
* Devices are named: ``api.plan(problem, device="h100")`` re-asks the
  same question of an H100-class part, and ``api.register_device`` adds
  your own.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import FNO1DProblem, FusionStage, api


def main() -> None:
    rng = np.random.default_rng(0)

    # A paper-shaped layer: batch of 8 signals, hidden dim 64, 128-point
    # grid, keep the low 64 frequency bins.
    batch, hidden, dim_x, modes = 8, 64, 128, 64
    x = (rng.standard_normal((batch, hidden, dim_x))
         + 1j * rng.standard_normal((batch, hidden, dim_x))).astype(np.complex64)
    weight = ((rng.standard_normal((hidden, hidden))
               + 1j * rng.standard_normal((hidden, hidden))) / hidden
              ).astype(np.complex64)

    print("== numerics: three engines, one operator ==")
    outputs = {
        engine: api.spectral_conv(x, weight, modes, engine=engine)
        for engine in ("pytorch", "reference", "turbo")
    }
    ref = outputs["pytorch"]
    for engine, out in outputs.items():
        err = np.abs(out - ref).max()
        print(f"  {engine:<10s} shape={out.shape}  max |diff vs pytorch| = {err:.2e}")

    print("\n== execution model: what does fusion buy on an A100? ==")
    problem = FNO1DProblem.from_m_spatial(2**20, hidden=hidden,
                                          dim_x=dim_x, modes=modes)
    baseline = api.plan(problem, FusionStage.PYTORCH)
    print(baseline.report().breakdown())
    runner = api.Runner()
    for stage in FusionStage.ladder():
        p = runner.plan(problem, stage)
        print(
            f"  stage {stage.value}: {p.total_time * 1e3:7.3f} ms "
            f"({p.launch_count} kernels)  speedup "
            f"{p.speedup_vs_baseline():+6.1f}%  -- {stage.description}"
        )
    best = runner.best(problem)
    print(f"  stage E resolves to stage {best.stage.value} on this problem")

    print("\n== same question, H100-class device ==")
    h100 = api.Runner(device="h100")
    best_h = h100.best(problem)
    print(
        f"  {h100.device.name}: best stage {best_h.stage.value}, "
        f"{best_h.total_time * 1e3:7.3f} ms, "
        f"speedup {best_h.speedup_vs_baseline():+6.1f}%"
    )


if __name__ == "__main__":
    main()
