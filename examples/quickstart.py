"""Quickstart: one Fourier layer, three engines, one modelled speedup.

Runs the paper's spectral convolution (FFT -> truncate -> CGEMM ->
zero-pad -> iFFT) through the staged PyTorch-style engine, the Stockham
reference engine and the fused TurboFNO engine, checks they agree, and
asks the A100 execution model what the fusion is worth.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    FNO1DProblem,
    FusionStage,
    build_pipeline_1d,
    spectral_conv_1d,
)
from repro.gpu.timeline import speedup_percent


def main() -> None:
    rng = np.random.default_rng(0)

    # A paper-shaped layer: batch of 8 signals, hidden dim 64, 128-point
    # grid, keep the low 64 frequency bins.
    batch, hidden, dim_x, modes = 8, 64, 128, 64
    x = (rng.standard_normal((batch, hidden, dim_x))
         + 1j * rng.standard_normal((batch, hidden, dim_x))).astype(np.complex64)
    weight = ((rng.standard_normal((hidden, hidden))
               + 1j * rng.standard_normal((hidden, hidden))) / hidden
              ).astype(np.complex64)

    print("== numerics: three engines, one operator ==")
    outputs = {
        engine: spectral_conv_1d(x, weight, modes, engine=engine)
        for engine in ("pytorch", "reference", "turbo")
    }
    ref = outputs["pytorch"]
    for engine, out in outputs.items():
        err = np.abs(out - ref).max()
        print(f"  {engine:<10s} shape={out.shape}  max |diff vs pytorch| = {err:.2e}")

    print("\n== execution model: what does fusion buy on an A100? ==")
    problem = FNO1DProblem.from_m_spatial(2**20, hidden=hidden,
                                          dim_x=dim_x, modes=modes)
    baseline = build_pipeline_1d(problem, FusionStage.PYTORCH).report()
    print(baseline.breakdown())
    for stage in FusionStage.ladder():
        report = build_pipeline_1d(problem, stage).report()
        speedup = speedup_percent(baseline.total_time, report.total_time)
        print(
            f"  stage {stage.value}: {report.total_time * 1e3:7.3f} ms "
            f"({report.launch_count} kernels)  speedup {speedup:+6.1f}%  "
            f"-- {stage.description}"
        )


if __name__ == "__main__":
    main()
