"""Train a 1-D FNO on viscous Burgers — the workload that motivates FNO.

Generates ``(u(x, 0), u(x, 1))`` pairs with the pseudo-spectral Burgers
solver (initial conditions drawn from the FNO paper's Gaussian random
field), trains a small FNO1d with the hand-written backward passes, and
reports train/test relative-L2 error.  The input gets the usual coordinate
channel.

Run:  python examples/burgers_train.py
"""

import time

import numpy as np

from repro.nn import Adam, FNO1d, train
from repro.nn.trainer import evaluate
from repro.pde import burgers_dataset


def add_coordinate_channel(u: np.ndarray) -> np.ndarray:
    """Stack the grid coordinate as a second input channel."""
    n_samples, n = u.shape
    grid = np.tile(np.linspace(0.0, 1.0, n, endpoint=False), (n_samples, 1))
    return np.stack([u, grid], axis=1)  # (n_samples, 2, n)


def main() -> None:
    n_train, n_test, n = 96, 24, 64
    print(f"generating {n_train + n_test} Burgers trajectories (n={n}) ...")
    u0, ut = burgers_dataset(n_train + n_test, n=n, t_final=0.5, nu=0.02,
                             seed=7, n_steps=256)
    x = add_coordinate_channel(u0)
    y = ut[:, None, :]
    x_train, y_train = x[:n_train], y[:n_train]
    x_test, y_test = x[n_train:], y[n_train:]

    model = FNO1d(in_channels=2, out_channels=1, width=20, modes=12,
                  depth=3, proj_width=32, seed=0)
    print(f"FNO1d with {model.num_parameters()} parameters")
    opt = Adam(list(model.parameters()), lr=2e-3)

    t0 = time.time()
    history = train(model, opt, x_train, y_train, epochs=25, batch_size=16,
                    x_test=x_test, y_test=y_test, verbose=True)
    print(f"trained in {time.time() - t0:.1f}s")

    test_err = evaluate(model, x_test, y_test)
    print(f"final train rel-L2: {history.final_train:.4f}")
    print(f"final  test rel-L2: {test_err:.4f}")
    if test_err < 0.25:
        print("OK: the operator u0 -> u(T) is learned to <25% relative error")
    else:
        print("WARNING: error above the expected band; try more epochs")


if __name__ == "__main__":
    main()
