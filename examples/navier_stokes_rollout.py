"""Learn the Navier-Stokes vorticity propagator and roll it out.

Trains an FNO2d on one-step vorticity evolution (w(t) -> w(t + dt)) using
the pseudo-spectral solver as ground truth, then rolls the learned
operator out autoregressively through ``Session.rollout`` — state stays
inside the serving layer for the whole trajectory — and compares against
the solver, the FourCastNet-style use the paper's introduction motivates.

Run:  python examples/navier_stokes_rollout.py
"""

import time

import numpy as np

from repro.api import Session
from repro.nn import Adam, FNO2d, train
from repro.pde import solve_navier_stokes
from repro.pde.grf import grf_2d


def relative_l2(pred: np.ndarray, target: np.ndarray) -> float:
    return float(
        np.linalg.norm(pred - target) / (np.linalg.norm(target) + 1e-12)
    )


def main() -> None:
    n, dt, nu = 16, 0.1, 1e-2
    n_traj, n_steps = 20, 4
    rng = np.random.default_rng(3)

    print(f"generating {n_traj} trajectories of {n_steps} steps (dt={dt}) ...")
    w = grf_2d(n_traj, n, n, alpha=2.5, tau=7.0, sigma=7.0**1.5, rng=rng)
    frames = [w]
    for _ in range(n_steps):
        frames.append(
            solve_navier_stokes(frames[-1], t_final=dt, nu=nu, n_steps=24)
        )
    states = np.stack(frames)  # (n_steps+1, n_traj, n, n)

    # One-step pairs from every trajectory segment.
    x = states[:-1].reshape(-1, 1, n, n)
    y = states[1:].reshape(-1, 1, n, n)
    scale = x.std()
    x, y = x / scale, y / scale

    model = FNO2d(in_channels=1, out_channels=1, width=14, modes_x=6,
                  modes_y=6, depth=3, proj_width=24, seed=1)
    opt = Adam(list(model.parameters()), lr=3e-3)
    t0 = time.time()
    hist = train(model, opt, x, y, epochs=20, batch_size=16, verbose=True)
    print(f"trained in {time.time() - t0:.1f}s, "
          f"final one-step rel-L2 {hist.final_train:.4f}")

    print("\nautoregressive rollout vs the spectral solver:")
    w0 = grf_2d(1, n, n, alpha=2.5, tau=7.0, sigma=7.0**1.5,
                rng=np.random.default_rng(99))
    x0 = (w0 / scale)[:, None]  # (1, 1, n, n): shape-preserving state
    with Session() as session:
        traj = session.rollout(model, x0, steps=n_steps, keep="all")
    truth = w0
    for step in range(1, n_steps + 1):
        truth = solve_navier_stokes(truth, t_final=dt, nu=nu, n_steps=24)
        pred = traj[step - 1][:, 0]
        err = relative_l2(pred * scale, truth)
        print(f"  step {step}: rollout rel-L2 = {err:.4f}")


if __name__ == "__main__":
    main()
