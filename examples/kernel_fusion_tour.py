"""A guided tour of TurboFNO's kernel-fusion machinery.

Walks through every optimisation the paper introduces, printing the
modelled evidence for each:

1. Figure 5  — butterfly pruning op counts.
2. Figures 7/8 — shared-memory bank utilization of each layout.
3. Table 2 ladder — stages A-D on a 1-D and a 2-D layer, with per-kernel
   breakdowns and traffic totals.
4. The k-loop dataflow — the truncated FFT tiles feeding CGEMM's k-loop.

Run:  python examples/kernel_fusion_tour.py
"""

import numpy as np

from repro import FNO1DProblem, FNO2DProblem, FusionStage, api
from repro.analysis import figures
from repro.core.fft_variant import kloop_fft_schedule


def tour_pruning() -> None:
    print("=" * 72)
    print("1. FFT butterfly pruning (Figure 5)")
    for row in figures.fig05():
        print(
            f"   {row.n:>4}-pt FFT, keep {row.keep:>3}: "
            f"{row.ops}/{row.total_ops} ops = {row.fraction:.1%} of full work"
        )


def tour_swizzles() -> None:
    print("=" * 72)
    print("2. Shared-memory bank utilization (Figures 7 and 8)")
    for name, util in {**figures.fig07(), **figures.fig08()}.items():
        print(f"   {name:<26s} {util:>7.2%}")


def tour_ladder() -> None:
    print("=" * 72)
    print("3. The Table 2 optimisation ladder")
    prob1 = FNO1DProblem.from_m_spatial(2**20, hidden=64, dim_x=128, modes=64)
    prob2 = FNO2DProblem(batch=8, hidden=64, dim_x=256, dim_y=128,
                         modes_x=64, modes_y=64)
    # One facade call per (problem, stage): api.plan dispatches on the
    # problem's dimensionality, no _1d/_2d suffix in sight.
    for label, prob in (
        ("1-D layer (M=2^20, K=64)", prob1),
        ("2-D layer (BS=8, 256x128, K=64)", prob2),
    ):
        print(f"-- {label}")
        base = api.plan(prob, FusionStage.PYTORCH)
        print("   " + base.report().breakdown().replace("\n", "\n   "))
        for stage in FusionStage.ladder():
            p = api.plan(prob, stage)
            rep = p.report()
            print(
                f"   {stage.value}: {rep.total_time * 1e3:7.3f} ms, "
                f"{rep.launch_count} kernels, "
                f"{rep.counters.global_bytes / 1e9:6.2f} GB DRAM, "
                f"speedup {p.speedup_vs_baseline():+6.1f}%"
            )


def tour_kloop() -> None:
    print("=" * 72)
    print("4. The k-loop FFT variant feeding CGEMM (Figure 6c/d)")
    rng = np.random.default_rng(0)
    signals = rng.standard_normal((24, 32)) + 0j  # 24 hidden channels
    for step in kloop_fft_schedule(signals, modes=8, k_tb=8):
        print(
            f"   k-iteration {step.k_index}: channels {step.k_range} -> "
            f"A tile {step.a_tile.shape} (modes x k_tb, column-major)"
        )


def main() -> None:
    tour_pruning()
    tour_swizzles()
    tour_ladder()
    tour_kloop()


if __name__ == "__main__":
    main()
