#!/usr/bin/env python
"""Multi-process serving demo: `repro.api.ServePool`.

Serves a mixed-geometry stream of Fourier-layer inference requests
through a pool of shared-nothing worker processes — one warm
`repro.api.Session` per worker, requests routed by a stable geometry
hash so each worker's executor/tune caches stay hot, tensors carried
through shared-memory ring segments — and verifies the pooled results
are *bit-identical* to a serial one-worker session.

Run with::

    PYTHONPATH=src python examples/serve_demo.py

`ServePool(workers=None)` sizes the pool from `REPRO_WORKERS` (or the
CPU count); this demo pins `workers=4` so the shard map is stable.
"""

import numpy as np

from repro import api

WORKERS = 4
HIDDEN = 8

rng = np.random.default_rng(7)
weight = (
    (rng.standard_normal((HIDDEN, HIDDEN))
     + 1j * rng.standard_normal((HIDDEN, HIDDEN))) / HIDDEN
).astype(np.complex64)


def request(dim_x: int, modes: int, batch: int = 2):
    x = (
        rng.standard_normal((batch, HIDDEN, dim_x))
        + 1j * rng.standard_normal((batch, HIDDEN, dim_x))
    ).astype(np.complex64)
    return ((weight, modes), x)


# A stream mixing FFT sizes and mode counts — the traffic shape the
# geometry-hash router spreads across workers.
requests = [
    request(dim_x, modes)
    for _ in range(8)
    for dim_x in (512, 1024, 2048)
    for modes in (64, 128, 256)
]

# Reference: the serial in-process serving path (PR 4).
with_session = api.Session(backend="numpy")
reference = with_session.infer_many(requests, max_batch=16)
with_session.close()

# The pool: N processes, each owning one warm Session.  Submission
# blocks when a worker's queue or ring is full (backpressure); pass
# saturation="raise" to get PoolSaturated instead, and
# max_requests_per_worker=... to recycle workers with warmup handoff.
with api.ServePool(workers=WORKERS, backend="numpy", max_batch=16) as pool:
    results = pool.infer_many(requests, timeout=120)

    identical = all(
        a.dtype == b.dtype and np.array_equal(a, b)
        for a, b in zip(reference, results)
    )
    print(f"{len(requests)} requests over {WORKERS} workers; "
          f"bit-identical to serial session: {identical}")

    stats = pool.stats()
    print(f"\nper-geometry shard affinity "
          f"(admission: {stats['admission']}):")
    for geometry, entry in sorted(stats["per_geometry"].items()):
        print(f"  {geometry:>24s} -> worker {entry['worker']}  "
              f"({entry['requests']} requests, "
              f"{entry['requests_per_s']:.0f} req/s)")

    print("\nper-worker serving state:")
    for row in stats["per_worker"]:
        session_stats = row["session"] or {}
        print(f"  worker {row['shard']} (pid {row['pid']}): "
              f"served {row['served']} requests in "
              f"{session_stats.get('batches', '?')} micro-batches")

if not identical:
    raise SystemExit("pooled outputs diverged from the serial session")
print("\npool closed; all shared-memory segments unlinked:",
      pool.live_segment_names() == [])
